(** Fleet front door: sharded routing, proxying, crash-replacement (see
    the interface). *)

module Diag = Vrp_diag.Diag
module Supervisor = Vrp_sched.Supervisor

type worker = {
  sock : string;
  describe : string;
  kill : unit -> unit;
  alive : unit -> bool;
}

type spawner = wid:int -> incarnation:int -> sock:string -> worker

type settings = {
  size : int;
  dir : string;
  ping_interval_ms : int;
  ping_timeout_ms : int;
  restarts : int;
  retries : int;
  retry_backoff_ms : int;
  strict : bool;
  fault : Diag.Fault.t option;
  limits : Admit.limits;
}

let default_settings ~dir =
  {
    size = 2;
    dir;
    ping_interval_ms = 100;
    ping_timeout_ms = 250;
    restarts = 3;
    retries = 10;
    retry_backoff_ms = 40;
    strict = false;
    fault = None;
    limits = Admit.default_limits;
  }

type counters = {
  mutable served : int;
  mutable contained : int;
  mutable failovers : int;
  mutable replaced : int;
}

(* --- Front-door observability ---

   Registry mirrors of the fleet counters plus per-worker health gauges;
   the front door answers the [metrics] op from its own registry (its
   admission gate, proxy ladder and slot states live here, not in any
   worker), and [fleet-status] sources its uptime/per-op lines from the
   same cells. *)

let fleet_ops =
  [ "predict"; "analyze"; "compare"; "batch"; "status"; "evict"; "ping";
    "metrics"; "shutdown"; "fleet-status" ]

let fleet_op_label op = if List.mem op fleet_ops then op else "unknown"

let obs_requests op =
  Vrp_obs.Metrics.counter ~help:"Fleet front-door requests, by operation"
    ~labels:[ ("op", fleet_op_label op) ] "vrpd_fleet_requests_total"

let obs_request_seconds op =
  Vrp_obs.Metrics.histogram
    ~help:"Fleet front-door request latency in seconds, by operation"
    ~labels:[ ("op", fleet_op_label op) ] "vrpd_fleet_request_seconds"

let obs_served =
  Vrp_obs.Metrics.counter ~help:"Fleet requests served"
    "vrpd_fleet_served_total"

let obs_contained =
  Vrp_obs.Metrics.counter ~help:"Fleet requests contained"
    "vrpd_fleet_contained_total"

let obs_failovers =
  Vrp_obs.Metrics.counter ~help:"Proxy retries that re-routed to another worker"
    "vrpd_fleet_failovers_total"

let obs_replaced =
  Vrp_obs.Metrics.counter ~help:"Workers crash-replaced"
    "vrpd_fleet_replaced_total"

let obs_workers_healthy =
  Vrp_obs.Metrics.gauge ~help:"Fleet workers currently healthy"
    "vrpd_fleet_workers_healthy"

let obs_worker_up wid =
  Vrp_obs.Metrics.gauge ~help:"Per-worker liveness (1 = healthy)"
    ~labels:[ ("worker", string_of_int wid) ] "vrpd_fleet_worker_up"

let obs_worker_inflight wid =
  Vrp_obs.Metrics.gauge ~help:"Per-worker in-flight load from its last ping"
    ~labels:[ ("worker", string_of_int wid) ] "vrpd_fleet_worker_inflight"

let obs_fleet_uptime =
  Vrp_obs.Metrics.gauge ~help:"Fleet front door uptime in seconds"
    "vrpd_fleet_uptime_seconds"

type slot_state = Healthy | Replacing | Degraded

type slot = {
  wid : int;
  sock : string;  (* fixed per slot: a replacement rebinds the same path *)
  mutable body : worker option;
  mutable incarnation : int;  (* bodies spawned so far *)
  mutable state : slot_state;
  (* Last load the worker reported in a ping (or that the proxy observed
     in a busy response); drives saturation-aware routing. *)
  mutable inflight : int;
  mutable capacity : int;  (* 0 = unknown *)
  mutable shed : int;
}

type t = {
  settings : settings;
  spawner : spawner;
  slots : slot array;
  sup : Supervisor.t;  (* proxy retry ladder (no deadline monitor) *)
  counters : counters;
  report : Diag.report;
  lock : Mutex.t;  (* counters + report + slot states + proxied count *)
  acc : Accept.t;
  admit : Admit.t;  (* front-door connection bound + idle sweeper *)
  started : float;  (* unix time of [create] *)
  monitor_stop : bool Atomic.t;
  mutable monitor : Thread.t option;
  mutable proxied : int;  (* Kill_worker fault trigger count *)
  mutable shut : bool;
}

let settings t = t.settings
let counters t = t.counters
let report t = t.report
let admit t = t.admit

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let note t severity fmt =
  Printf.ksprintf
    (fun msg -> locked t (fun () -> Diag.add t.report severity Diag.Server_event msg))
    fmt

(* --- Worker liveness probes --- *)

(* Started = the socket accepts a connection. No ping here: a worker
   wedged by a Slow_worker fault still counts as started — it is the
   health monitor's job to then catch it. *)
let wait_listening ?(budget_ms = 10000) sock =
  let deadline = Unix.gettimeofday () +. (float_of_int budget_ms /. 1000.) in
  let rec go () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX sock) with
    | () ->
      (try Unix.close fd with _ -> ());
      true
    | exception _ ->
      (try Unix.close fd with _ -> ());
      if Unix.gettimeofday () > deadline then false
      else begin
        Thread.delay 0.01;
        go ()
      end
  in
  go ()

(* One health check: connect, send a ping, wait for any well-formed
   response under the read timeout. A worker that cannot answer a ping in
   time is as good as dead for routing purposes. A live answer doubles as
   the load report: its data carries inflight/capacity/shed, which routing
   uses to probe past saturated workers. *)
let ping_probe ~timeout_ms sock =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let resp =
    try
      Unix.connect fd (Unix.ADDR_UNIX sock);
      let secs = float_of_int timeout_ms /. 1000. in
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO secs;
      Unix.setsockopt_float fd Unix.SO_SNDTIMEO secs;
      Protocol.write_frame fd
        (Protocol.encode_request { Protocol.id = 1; op = "ping"; params = Json.Null });
      match Protocol.read_frame fd with
      | Some payload -> (
        match Protocol.decode_response payload with
        | Ok resp when resp.Protocol.ok -> Some resp
        | Ok _ | Error _ -> None)
      | None -> None
    with _ -> None
  in
  (try Unix.close fd with _ -> ());
  resp

let data_int key data =
  match List.assoc_opt key data with Some (Json.Int n) -> Some n | _ -> None

let note_load t (s : slot) (resp : Protocol.response) =
  locked t (fun () ->
      (match data_int "inflight" resp.Protocol.data with
      | Some n -> s.inflight <- n
      | None -> ());
      (match data_int "capacity" resp.Protocol.data with
      | Some n -> s.capacity <- n
      | None -> ());
      match data_int "shed" resp.Protocol.data with
      | Some n -> s.shed <- n
      | None -> ())

(* --- Spawning and replacement --- *)

let wait_dead ?(budget_ms = 5000) (w : worker) =
  let deadline = Unix.gettimeofday () +. (float_of_int budget_ms /. 1000.) in
  let rec go () =
    if not (w.alive ()) then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Thread.delay 0.01;
      go ()
    end
  in
  go ()

let spawn_slot t (s : slot) =
  let incarnation = s.incarnation in
  s.incarnation <- incarnation + 1;
  let w = t.spawner ~wid:s.wid ~incarnation ~sock:s.sock in
  if not (wait_listening s.sock) then begin
    w.kill ();
    failwith (Printf.sprintf "worker-%d (%s) never started listening" s.wid w.describe)
  end;
  s.body <- Some w;
  s.state <- Healthy

(* Replacement is the middle rung of the ladder: kill what is left of the
   old body, wait for its socket path to be reclaimable, respawn on the
   same path. Out of restart budget → degrade the slot; under --strict a
   degraded fleet stops serving (vrpd maps that to exit 3). *)
let replace t (s : slot) ~why =
  locked t (fun () -> s.state <- Replacing);
  (match s.body with
  | Some w ->
    w.kill ();
    if not (wait_dead w) then
      note t Diag.Warning "worker-%d refused to die; replacing anyway" s.wid
  | None -> ());
  s.body <- None;
  if s.incarnation > t.settings.restarts then begin
    locked t (fun () -> s.state <- Degraded);
    note t Diag.Warning
      "worker-%d %s and is out of restarts (%d used); slot degraded" s.wid why
      t.settings.restarts;
    if t.settings.strict then Accept.stop t.acc
  end
  else
    match spawn_slot t s with
    | () ->
      locked t (fun () ->
          t.counters.replaced <- t.counters.replaced + 1;
          Vrp_obs.Metrics.inc obs_replaced);
      note t Diag.Warning "worker-%d %s; replaced (incarnation %d)" s.wid why
        (s.incarnation - 1)
    | exception e ->
      locked t (fun () -> s.state <- Degraded);
      note t Diag.Warning "worker-%d replacement failed (%s); slot degraded" s.wid
        (Printexc.to_string e);
      if t.settings.strict then Accept.stop t.acc

let monitor_loop t () =
  let interval = float_of_int t.settings.ping_interval_ms /. 1000. in
  while not (Atomic.get t.monitor_stop) do
    Array.iter
      (fun s ->
        if (not (Atomic.get t.monitor_stop)) && s.state = Healthy then
          match s.body with
          | Some w when not (w.alive ()) -> replace t s ~why:"died"
          | Some _ -> (
            match ping_probe ~timeout_ms:t.settings.ping_timeout_ms s.sock with
            | Some resp -> note_load t s resp
            | None ->
              (* Unresponsive but running: a wedged daemon holds its socket,
                 so it must be killed before the slot can be rebound. *)
              replace t s ~why:"stopped answering pings")
          | None -> ())
      t.slots;
    (* Sleep in small steps so shutdown does not wait a full interval. *)
    let rec nap left =
      if left > 0. && not (Atomic.get t.monitor_stop) then begin
        Thread.delay (Float.min 0.02 left);
        nap (left -. 0.02)
      end
    in
    nap interval
  done

let create ~settings ~spawner () =
  if settings.size < 1 then invalid_arg "Fleet.create: size must be >= 1";
  (try Unix.mkdir settings.dir 0o755
   with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let slots =
    Array.init settings.size (fun wid ->
        {
          wid;
          sock = Filename.concat settings.dir (Printf.sprintf "worker-%d.sock" wid);
          body = None;
          incarnation = 0;
          state = Replacing;
          inflight = 0;
          capacity = 0;
          shed = 0;
        })
  in
  let t =
    {
      settings;
      spawner;
      slots;
      sup =
        Supervisor.create
          ~policy:
            {
              Supervisor.deadline_ms = None;
              retries = settings.retries;
              backoff_ms = settings.retry_backoff_ms;
            }
          ();
      counters = { served = 0; contained = 0; failovers = 0; replaced = 0 };
      report = Diag.create ();
      lock = Mutex.create ();
      acc = Accept.create ();
      admit = Admit.create ~limits:settings.limits ();
      started = Unix.gettimeofday ();
      monitor_stop = Atomic.make false;
      monitor = None;
      proxied = 0;
      shut = false;
    }
  in
  (match Array.iter (spawn_slot t) slots with
  | () -> ()
  | exception e ->
    (* A partial fleet is torn down, not served. *)
    Array.iter
      (fun s ->
        match s.body with
        | Some w ->
          w.kill ();
          ignore (wait_dead w)
        | None -> ())
      slots;
    raise e);
  note t Diag.Info "fleet up: %d worker(s) in %s" settings.size settings.dir;
  t.monitor <- Some (Thread.create (monitor_loop t) ());
  t

(* --- Routing --- *)

(* The shard key prefers the most stable identity a request carries:
   session id (all requests of a session hit one worker's warm state),
   then file name, then the source digest, then the op. Deterministic by
   construction — the same request always routes the same way while the
   same slots are healthy. *)
let route_key ~op ~params =
  match Json.mem_string "session" params with
  | Some sid -> "session:" ^ sid
  | None -> (
    match Json.mem_string "name" params with
    | Some name -> "name:" ^ name
    | None -> (
      match Json.mem_string "source" params with
      | Some source -> "source:" ^ Digest.to_hex (Digest.string source)
      | None -> "op:" ^ op))

(* Saturated = the worker's last load report shows no free in-flight slot;
   routing treats it like a degraded slot in the first probe pass, so new
   work spills to idle workers instead of queueing behind a hot shard. *)
let saturated (s : slot) = s.capacity > 0 && s.inflight >= s.capacity

let route t ~op ~params =
  let key = route_key ~op ~params in
  let d = Digest.string key in
  let base =
    (Char.code d.[0] lsl 16) lor (Char.code d.[1] lsl 8) lor Char.code d.[2]
  in
  let n = Array.length t.slots in
  (* Linear probe past degraded and saturated slots; Replacing slots still
     route (their socket comes back under the proxy's retry budget). When
     every non-degraded slot is saturated, fall back to the sharded order —
     the worker's own queue + shed ladder then takes over. *)
  let rec probe ~skip_saturated k =
    if k = n then
      if skip_saturated then probe ~skip_saturated:false 0
      else failwith "all fleet workers are degraded"
    else
      let s = t.slots.((base + k) mod n) in
      if s.state = Degraded || (skip_saturated && saturated s) then
        probe ~skip_saturated (k + 1)
      else s
  in
  probe ~skip_saturated:true 0

let route_sock t ~op ~params = (route t ~op ~params).sock

let degraded t =
  Array.exists (fun s -> s.state = Degraded) t.slots

(* --- The front-door handler --- *)

let state_string = function
  | Healthy -> "healthy"
  | Replacing -> "replacing"
  | Degraded -> "degraded"

(* Refresh the per-worker and aggregate health gauges from slot state.
   Called on every scrape/status rather than on every transition so the
   gauges cannot drift from the slots they summarize. *)
let refresh_health_gauges t =
  let healthy = ref 0 in
  Array.iter
    (fun s ->
      if s.state = Healthy then incr healthy;
      Vrp_obs.Metrics.set (obs_worker_up s.wid)
        (if s.state = Healthy then 1.0 else 0.0);
      Vrp_obs.Metrics.set (obs_worker_inflight s.wid) (float_of_int s.inflight))
    t.slots;
  Vrp_obs.Metrics.set obs_workers_healthy (float_of_int !healthy);
  Vrp_obs.Metrics.set obs_fleet_uptime (Unix.gettimeofday () -. t.started)

let handle_fleet_status t =
  let c = t.counters in
  let healthy =
    Array.fold_left (fun n s -> if s.state = Healthy then n + 1 else n) 0 t.slots
  in
  refresh_health_gauges t;
  let uptime = Unix.gettimeofday () -. t.started in
  let op_counts =
    List.map (fun op -> (op, Vrp_obs.Metrics.value (obs_requests op))) fleet_ops
  in
  let total_requests = List.fold_left (fun acc (_, n) -> acc + n) 0 op_counts in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "fleet %s: %d worker(s), %d healthy\n" Version.version
       (Array.length t.slots) healthy);
  Buffer.add_string buf
    (Printf.sprintf "requests: %d served, %d contained, %d failover(s)\n" c.served
       c.contained c.failovers);
  Buffer.add_string buf (Printf.sprintf "uptime: %.1fs\n" uptime);
  Buffer.add_string buf
    (Printf.sprintf "ops: %d total (%s)\n" total_requests
       (String.concat ", "
          (List.map (fun (op, n) -> Printf.sprintf "%s %d" op n) op_counts)));
  Buffer.add_string buf (Printf.sprintf "workers replaced: %d\n" c.replaced);
  Array.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "worker-%d: %s (incarnation %d) inflight %d/%s, %d shed, %s\n"
           s.wid (state_string s.state)
           (max 0 (s.incarnation - 1))
           s.inflight
           (if s.capacity > 0 then string_of_int s.capacity else "?")
           s.shed s.sock))
    t.slots;
  Buffer.add_string buf (Admit.counters_line t.admit ^ "\n");
  Buffer.add_string buf (Supervisor.counters_line t.sup ^ "\n");
  let workers =
    Array.to_list
      (Array.map
         (fun s ->
           Json.Obj
             [
               ("wid", Json.Int s.wid);
               ("state", Json.String (state_string s.state));
               ("incarnation", Json.Int (max 0 (s.incarnation - 1)));
               ("inflight", Json.Int s.inflight);
               ("capacity", Json.Int s.capacity);
               ("shed", Json.Int s.shed);
               ("sock", Json.String s.sock);
             ])
         t.slots)
  in
  ( { Ops.out = Buffer.contents buf; err = ""; code = 0 },
    [
      ("version", Json.String Version.version);
      ("size", Json.Int (Array.length t.slots));
      ("healthy", Json.Int healthy);
      ("served", Json.Int c.served);
      ("contained", Json.Int c.contained);
      ("failovers", Json.Int c.failovers);
      ("replaced", Json.Int c.replaced);
      ("uptime_s", Json.Float uptime);
      ("requests_total", Json.Int total_requests);
      ("ops", Json.Obj (List.map (fun (op, n) -> (op, Json.Int n)) op_counts));
      ("workers", Json.List workers);
    ] )

let handle_ping t =
  let a = Admit.counters t.admit in
  ( { Ops.out = ""; err = ""; code = 0 },
    [
      ("pong", Json.Bool true);
      ("pid", Json.Int (Unix.getpid ()));
      ("inflight", Json.Int (Admit.inflight t.admit));
      ("shed", Json.Int (a.Admit.shed_conns + a.Admit.shed_requests));
    ] )

let handle_shutdown t =
  Accept.request_stop t.acc;
  ({ Ops.out = ""; err = ""; code = 0 }, [ ("stopping", Json.Bool true) ])

(* Front-door Prometheus scrape. Answered locally — the front door's own
   registry holds its admission gate, proxy ladder, replacement counters
   and per-worker health; workers are separate processes with their own
   scrapeable registries. Control plane: never proxied, never queued. *)
let handle_metrics t =
  refresh_health_gauges t;
  ({ Ops.out = Vrp_obs.Metrics.render (); err = ""; code = 0 }, [])

(* The Kill_worker chaos fault: every Nth proxied request force-kills its
   routed worker just before forwarding — the proxy's retry ladder plus
   the monitor's replacement must then serve it anyway. *)
let maybe_kill_routed t (s : slot) =
  match t.settings.fault with
  | Some (Diag.Fault.Kill_worker n) ->
    let fire =
      locked t (fun () ->
          t.proxied <- t.proxied + 1;
          t.proxied mod n = 0)
    in
    if fire then begin
      note t Diag.Warning "fault kill-worker: killing worker-%d before forwarding"
        s.wid;
      match s.body with Some w -> w.kill () | None -> ()
    end
  | _ -> ()

(* A busy response raised through the proxy's retry ladder: each retry
   re-routes, and the slot that shed was marked saturated, so the replay
   probes to a less-loaded worker. Carries the response so an exhausted
   ladder still hands the client the busy + retry_after_ms contract. *)
exception Worker_busy of Protocol.response

let proxy t (req : Protocol.request) =
  let op = req.Protocol.op and params = req.Protocol.params in
  let first = route t ~op ~params in
  maybe_kill_routed t first;
  let resp =
    match
      Supervisor.supervise t.sup
        ~name:(Printf.sprintf "%s via worker-%d" op first.wid)
        (fun token ->
          if Diag.Cancel.attempt token > 0 then
            locked t (fun () ->
                t.counters.failovers <- t.counters.failovers + 1;
                Vrp_obs.Metrics.inc obs_failovers);
          (* Re-route each attempt: the slot may have degraded (or
             saturated) mid-retry. *)
          let s = route t ~op ~params in
          let resp =
            Client.with_connection s.sock (fun c -> Client.request c ~op ~params ())
          in
          match Protocol.retry_after_ms resp with
          | Some _ ->
            (* The worker shed this request: remember it as saturated until
               its next ping so replays probe past it. *)
            locked t (fun () ->
                s.inflight <- max s.inflight (max s.capacity 1));
            raise (Worker_busy resp)
          | None -> resp)
    with
    | resp -> resp
    | exception Worker_busy resp -> resp
  in
  (* The worker's response passes through byte-identical; only the rid is
     rewritten to echo the client's request id instead of the proxy's. *)
  { resp with Protocol.rid = req.Protocol.id }

let handle t (req : Protocol.request) =
  let local (o : Ops.outcome) data =
    {
      Protocol.rid = req.Protocol.id;
      ok = true;
      code = o.Ops.code;
      out = o.Ops.out;
      err = o.Ops.err;
      data;
    }
  in
  let dispatch () =
    match req.Protocol.op with
    | "fleet-status" ->
      let o, data = handle_fleet_status t in
      local o data
    | "ping" ->
      let o, data = handle_ping t in
      local o data
    | "metrics" ->
      let o, data = handle_metrics t in
      local o data
    | "shutdown" ->
      let o, data = handle_shutdown t in
      local o data
    | _ -> proxy t req
  in
  Vrp_obs.Metrics.inc (obs_requests req.Protocol.op);
  Vrp_obs.Metrics.time (obs_request_seconds req.Protocol.op) @@ fun () ->
  match dispatch () with
  | resp ->
    locked t (fun () ->
        t.counters.served <- t.counters.served + 1;
        Vrp_obs.Metrics.inc obs_served);
    resp
  | exception e ->
    let msg =
      match e with Failure m -> m | e -> Printexc.to_string e
    in
    locked t (fun () ->
        t.counters.contained <- t.counters.contained + 1;
        Vrp_obs.Metrics.inc obs_contained);
    note t Diag.Warning "%s id=%d contained: %s" req.Protocol.op req.Protocol.id msg;
    Protocol.error_response ~rid:req.Protocol.id ~kind:"worker-unavailable" msg

(* --- Serving --- *)

let serve t listen_fd =
  Accept.serve t.acc ~handle:(handle t)
    ~on_bad_request:(fun _msg ->
      locked t (fun () -> t.counters.contained <- t.counters.contained + 1))
    ~admit:t.admit listen_fd

let stop t = Accept.stop t.acc
let stopping t = Accept.stopping t.acc

let shutdown t =
  if not t.shut then begin
    t.shut <- true;
    Atomic.set t.monitor_stop true;
    Option.iter Thread.join t.monitor;
    t.monitor <- None;
    Array.iter
      (fun s ->
        match s.body with
        | Some w ->
          w.kill ();
          ignore (wait_dead w);
          s.body <- None
        | None -> ())
      t.slots;
    Supervisor.shutdown t.sup;
    Accept.close t.acc
  end

(* --- In-process workers (tests and bench) --- *)

let in_process_spawner ?(worker_settings = Server.default_settings) () : spawner =
 fun ~wid ~incarnation ~sock ->
  let server = Server.create ~settings:worker_settings () in
  let listen_fd = Server.listen_unix sock in
  let dead = Atomic.make false in
  let _thread =
    Thread.create
      (fun () ->
        (try Server.serve server listen_fd with _ -> ());
        (try Unix.close listen_fd with _ -> ());
        (* Unlink before flipping [dead]: a replacement spawn that observed
           dead=true must find the socket path reclaimable. *)
        (try Unix.unlink sock with _ -> ());
        (try Server.shutdown server with _ -> ());
        Atomic.set dead true)
      ()
  in
  {
    sock;
    describe = Printf.sprintf "in-process worker-%d.%d" wid incarnation;
    kill = (fun () -> Server.stop server);
    alive = (fun () -> not (Atomic.get dead));
  }
