(** vrpd protocol client (see the interface). *)

type conn = { fd : Unix.file_descr; mutable next_id : int }

let default_address () =
  Filename.concat (Filename.get_temp_dir_name ()) "vrpd.sock"

let parse_addr addr =
  if String.contains addr '/' || not (String.contains addr ':') then `Unix addr
  else
    (* Split on the last ':' (brackets stripped) so IPv6 literals work;
       anything that doesn't parse as HOST:PORT stays a Unix path. *)
    match Protocol.parse_hostport addr with
    | Ok (host, port) -> `Tcp (host, port)
    | Error _ -> `Unix addr

let connect_fd addr =
  match parse_addr addr with
  | `Unix path ->
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_UNIX path)
     with e ->
       (try Unix.close fd with _ -> ());
       raise e);
    fd
  | `Tcp (host, port) -> (
    match
      Unix.getaddrinfo host (string_of_int port) [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM ]
    with
    | [] -> failwith (Printf.sprintf "cannot resolve %s:%d" host port)
    | ai :: _ ->
      let fd = Unix.socket (Unix.domain_of_sockaddr ai.Unix.ai_addr) Unix.SOCK_STREAM 0 in
      (try Unix.connect fd ai.Unix.ai_addr
       with e ->
         (try Unix.close fd with _ -> ());
         raise e);
      fd)

let connect addr = { fd = connect_fd addr; next_id = 1 }

let request conn ~op ?(params = Json.Null) () =
  let id = conn.next_id in
  conn.next_id <- id + 1;
  Protocol.write_frame conn.fd
    (Protocol.encode_request { Protocol.id; op; params });
  match Protocol.read_frame conn.fd with
  | None -> failwith "vrpd closed the connection without answering"
  | Some payload -> (
    match Protocol.decode_response payload with
    | Error msg -> failwith msg
    | Ok resp ->
      (* rid = 0 marks a containment response to an undecodable request. *)
      if resp.Protocol.rid <> id && resp.Protocol.rid <> 0 then
        failwith
          (Printf.sprintf "response id %d does not match request id %d"
             resp.Protocol.rid id);
      resp)

let close conn = try Unix.close conn.fd with _ -> ()

let with_connection addr f =
  let conn = connect addr in
  Fun.protect ~finally:(fun () -> close conn) (fun () -> f conn)

(* --- Failover retry --- *)

(* The transient errors of a worker dying under us: the connect refused
   while the replacement rebinds, or the connection dropped mid-request.
   Anything else (protocol violation, mismatched rid) is not retryable —
   replaying could mask a real bug. *)
let retryable = function
  | Unix.Unix_error
      ( ( Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.ECONNABORTED | Unix.EPIPE
        | Unix.ENOENT | Unix.ENOTCONN | Unix.ETIMEDOUT ),
        _,
        _ ) ->
    true
  | Failure msg ->
    msg = "connection closed mid-frame"
    || msg = "vrpd closed the connection without answering"
  | _ -> false

let request_retry ?(attempts = 8) ?(backoff_ms = 25) ?(seed = 0) ~addr ~op
    ?(params = Json.Null) () =
  let prng = Vrp_util.Prng.create (seed lxor Hashtbl.hash (addr, op)) in
  let rec go k =
    match with_connection addr (fun conn -> request conn ~op ~params ()) with
    | resp -> (
      (* A busy response is the server shedding load, not answering: honor
         its retry-after hint and replay. Out of tries, the busy response
         itself is returned so the caller sees the structured shed. *)
      match Protocol.retry_after_ms resp with
      | Some wait_ms when k + 1 < attempts ->
        let jitter = Vrp_util.Prng.int prng (max 1 (wait_ms / 2) + 1) in
        Thread.delay (float_of_int (wait_ms + jitter) /. 1000.);
        go (k + 1)
      | Some _ | None -> resp)
    | exception e when retryable e && k + 1 < attempts ->
      (* Exponential backoff with deterministic jitter, capped at ~2s: long
         enough for a crash-replaced worker to rebind its socket, bounded
         so a dead fleet fails fast. *)
      let base = backoff_ms * (1 lsl min k 6) in
      let base = min base 2000 in
      let jitter = Vrp_util.Prng.int prng (max 1 (base / 2)) in
      Thread.delay (float_of_int (base + jitter) /. 1000.);
      go (k + 1)
  in
  go 0
