(** vrpd protocol client (see the interface). *)

type conn = { fd : Unix.file_descr; mutable next_id : int }

let default_address () =
  Filename.concat (Filename.get_temp_dir_name ()) "vrpd.sock"

let parse_addr addr =
  if String.contains addr '/' || not (String.contains addr ':') then `Unix addr
  else
    match String.rindex_opt addr ':' with
    | Some i -> (
      let host = String.sub addr 0 i in
      let port = String.sub addr (i + 1) (String.length addr - i - 1) in
      match int_of_string_opt port with
      | Some port -> `Tcp ((if host = "" then "127.0.0.1" else host), port)
      | None -> `Unix addr)
    | None -> `Unix addr

let connect addr =
  let fd =
    match parse_addr addr with
    | `Unix path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX path)
       with e ->
         (try Unix.close fd with _ -> ());
         raise e);
      fd
    | `Tcp (host, port) -> (
      match
        Unix.getaddrinfo host (string_of_int port) [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM ]
      with
      | [] -> failwith (Printf.sprintf "cannot resolve %s:%d" host port)
      | ai :: _ ->
        let fd = Unix.socket (Unix.domain_of_sockaddr ai.Unix.ai_addr) Unix.SOCK_STREAM 0 in
        (try Unix.connect fd ai.Unix.ai_addr
         with e ->
           (try Unix.close fd with _ -> ());
           raise e);
        fd)
  in
  { fd; next_id = 1 }

let request conn ~op ?(params = Json.Null) () =
  let id = conn.next_id in
  conn.next_id <- id + 1;
  Protocol.write_frame conn.fd
    (Protocol.encode_request { Protocol.id; op; params });
  match Protocol.read_frame conn.fd with
  | None -> failwith "vrpd closed the connection without answering"
  | Some payload -> (
    match Protocol.decode_response payload with
    | Error msg -> failwith msg
    | Ok resp ->
      (* rid = 0 marks a containment response to an undecodable request. *)
      if resp.Protocol.rid <> id && resp.Protocol.rid <> 0 then
        failwith
          (Printf.sprintf "response id %d does not match request id %d"
             resp.Protocol.rid id);
      resp)

let close conn = try Unix.close conn.fd with _ -> ()

let with_connection addr f =
  let conn = connect addr in
  Fun.protect ~finally:(fun () -> close conn) (fun () -> f conn)
