(** Length-prefixed JSON framing and request/response codec (see the
    interface). *)

type request = { id : int; op : string; params : Json.t }

type response = {
  rid : int;
  ok : bool;
  code : int;
  out : string;
  err : string;
  data : (string * Json.t) list;
}

let max_frame = 64 * 1024 * 1024

(* --- Framing --- *)

(* EINTR is retried (a signal is not a peer event); EAGAIN/EWOULDBLOCK is
   NOT — on a connection armed with SO_RCVTIMEO/SO_SNDTIMEO it means the
   peer stalled past its budget, and retrying would defeat the timeout. *)
let really_read fd buf off len =
  let rec loop off len =
    if len > 0 then begin
      match Unix.read fd buf off len with
      | 0 -> failwith "connection closed mid-frame"
      | n -> loop (off + n) (len - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop off len
    end
  in
  loop off len

let really_write fd buf off len =
  let rec loop off len =
    if len > 0 then begin
      match Unix.write fd buf off len with
      | 0 ->
        (* A 0-byte write makes no progress; looping on it would spin
           forever against a peer that stopped draining. *)
        failwith "write stalled: peer stopped draining"
      | n -> loop (off + n) (len - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop off len
    end
  in
  loop off len

(* Payloads are read in bounded chunks so memory tracks the bytes that
   actually arrived: an adversarial length prefix just under the cap costs
   one chunk, not one up-front 64 MiB allocation. *)
let read_chunk = 64 * 1024

let rec read_retry_eintr fd buf off len =
  match Unix.read fd buf off len with
  | n -> n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_retry_eintr fd buf off len

let read_frame fd =
  let header = Bytes.create 4 in
  match read_retry_eintr fd header 0 4 with
  | 0 -> None (* clean EOF between frames *)
  | n ->
    if n < 4 then really_read fd header n (4 - n);
    let len =
      (Char.code (Bytes.get header 0) lsl 24)
      lor (Char.code (Bytes.get header 1) lsl 16)
      lor (Char.code (Bytes.get header 2) lsl 8)
      lor Char.code (Bytes.get header 3)
    in
    if len > max_frame then
      failwith (Printf.sprintf "frame of %d bytes exceeds the %d-byte cap" len max_frame);
    if len <= read_chunk then begin
      let payload = Bytes.create len in
      really_read fd payload 0 len;
      Some (Bytes.unsafe_to_string payload)
    end
    else begin
      let buf = Buffer.create read_chunk in
      let chunk = Bytes.create read_chunk in
      let rec go remaining =
        if remaining > 0 then begin
          let want = min remaining read_chunk in
          really_read fd chunk 0 want;
          Buffer.add_subbytes buf chunk 0 want;
          go (remaining - want)
        end
      in
      go len;
      Some (Buffer.contents buf)
    end

let write_frame fd payload =
  let len = String.length payload in
  if len > max_frame then
    failwith (Printf.sprintf "frame of %d bytes exceeds the %d-byte cap" len max_frame);
  let frame = Bytes.create (4 + len) in
  Bytes.set frame 0 (Char.chr ((len lsr 24) land 0xff));
  Bytes.set frame 1 (Char.chr ((len lsr 16) land 0xff));
  Bytes.set frame 2 (Char.chr ((len lsr 8) land 0xff));
  Bytes.set frame 3 (Char.chr (len land 0xff));
  Bytes.blit_string payload 0 frame 4 len;
  really_write fd frame 0 (4 + len)

(* --- Request / response codec --- *)

let encode_request r =
  Json.to_string
    (Json.Obj [ ("id", Json.Int r.id); ("op", Json.String r.op); ("params", r.params) ])

let decode_request payload =
  match Json.parse payload with
  | Error msg -> Error ("request is not valid JSON: " ^ msg)
  | Ok v -> (
    match (Json.mem_int "id" v, Json.mem_string "op" v) with
    | Some id, Some op ->
      Ok { id; op; params = Option.value ~default:Json.Null (Json.member "params" v) }
    | None, _ -> Error "request has no integer \"id\""
    | _, None -> Error "request has no string \"op\"")

let encode_response r =
  Json.to_string
    (Json.Obj
       ([
          ("id", Json.Int r.rid);
          ("ok", Json.Bool r.ok);
          ("code", Json.Int r.code);
          ("out", Json.String r.out);
          ("err", Json.String r.err);
        ]
       @ if r.data = [] then [] else [ ("data", Json.Obj r.data) ]))

let decode_response payload =
  match Json.parse payload with
  | Error msg -> Error ("response is not valid JSON: " ^ msg)
  | Ok v -> (
    match (Json.mem_int "id" v, Json.mem_bool "ok" v, Json.mem_int "code" v) with
    | Some rid, Some ok, Some code ->
      Ok
        {
          rid;
          ok;
          code;
          out = Option.value ~default:"" (Json.mem_string "out" v);
          err = Option.value ~default:"" (Json.mem_string "err" v);
          data =
            (match Json.member "data" v with
            | Some (Json.Obj fields) -> fields
            | _ -> []);
        }
    | _ -> Error "response is missing id/ok/code")

let error_response ~rid ~kind msg =
  {
    rid;
    ok = false;
    code = 2;
    out = "";
    err = Printf.sprintf "vrpd: %s\n" msg;
    data =
      [
        ( "diagnostic",
          Json.Obj
            [
              ("severity", Json.String "error");
              ("kind", Json.String kind);
              ("message", Json.String msg);
            ] );
      ];
  }

(* A busy response is an error_response of kind "busy" plus the machine
   field retry clients key off: data.retry_after_ms. *)
let busy_response ~rid ~retry_after_ms msg =
  let r = error_response ~rid ~kind:"busy" msg in
  { r with data = ("retry_after_ms", Json.Int retry_after_ms) :: r.data }

let retry_after_ms (r : response) =
  if r.ok then None
  else
    match List.assoc_opt "retry_after_ms" r.data with
    | Some (Json.Int ms) when ms >= 0 -> Some ms
    | _ -> None

(* --- Address parsing (shared by vrpd --listen and the TCP client) --- *)

let parse_hostport addr =
  match String.rindex_opt addr ':' with
  | None ->
    Error (Printf.sprintf "address %S has no port; want HOST:PORT" addr)
  | Some i -> (
    let host = String.sub addr 0 i in
    let port = String.sub addr (i + 1) (String.length addr - i - 1) in
    match int_of_string_opt port with
    | None ->
      Error (Printf.sprintf "address %S: port %S is not an integer" addr port)
    | Some p when p < 0 || p > 65535 ->
      Error (Printf.sprintf "address %S: port %d is out of range 0..65535" addr p)
    | Some p ->
      let host =
        let n = String.length host in
        (* [v6]:port — unwrap the brackets getaddrinfo does not expect. *)
        if n >= 2 && host.[0] = '[' && host.[n - 1] = ']' then
          String.sub host 1 (n - 2)
        else host
      in
      Ok ((if host = "" then "127.0.0.1" else host), p))
