(** Client side of the vrpd wire protocol — used by [vrpc remote ...], the
    tests and the bench harness.

    An address is either a Unix-domain socket path (contains a [/] or no
    [:]) or [HOST:PORT] for a TCP daemon started with [vrpd --listen]. *)

type conn

(** The conventional default daemon address shared by [vrpd] and
    [vrpc remote]: [vrpd.sock] in the system temp directory. *)
val default_address : unit -> string

(** Connect to an address. @raise Unix.Unix_error / Failure on refusal. *)
val connect : string -> conn

(** Send one request and wait for its response; request ids are assigned
    sequentially per connection and checked against the response echo.
    @raise Failure on a protocol violation or a dropped connection. *)
val request : conn -> op:string -> ?params:Json.t -> unit -> Protocol.response

val close : conn -> unit

(** [with_connection addr f] connects, runs [f] and always closes. *)
val with_connection : string -> (conn -> 'a) -> 'a
