(** Client side of the vrpd wire protocol — used by [vrpc remote ...], the
    tests and the bench harness.

    An address is either a Unix-domain socket path (contains a [/] or no
    [:]) or [HOST:PORT] for a TCP daemon started with [vrpd --listen]. *)

type conn

(** The conventional default daemon address shared by [vrpd] and
    [vrpc remote]: [vrpd.sock] in the system temp directory. *)
val default_address : unit -> string

(** How an address string is interpreted: a Unix path (contains [/] or no
    [:]), else [HOST:PORT] split on the {e last} colon with [\[...\]]
    brackets stripped from an IPv6 host; a string that fails to parse as
    [HOST:PORT] falls back to a Unix path. Exposed for the tests. *)
val parse_addr : string -> [ `Unix of string | `Tcp of string * int ]

(** Connect to an address. @raise Unix.Unix_error / Failure on refusal. *)
val connect : string -> conn

(** Connect and return the raw descriptor — the transport seam for chaos
    clients that hold idle connections or speak partial frames
    ([flood-conns], [stall-frame]). Caller closes it.
    @raise Unix.Unix_error / Failure like {!connect}. *)
val connect_fd : string -> Unix.file_descr

(** Send one request and wait for its response; request ids are assigned
    sequentially per connection and checked against the response echo.
    @raise Failure on a protocol violation or a dropped connection. *)
val request : conn -> op:string -> ?params:Json.t -> unit -> Protocol.response

val close : conn -> unit

(** [with_connection addr f] connects, runs [f] and always closes. *)
val with_connection : string -> (conn -> 'a) -> 'a

(** [request_retry ~addr ~op ()] sends one request on a fresh connection,
    retrying with exponential backoff and deterministic jitter (seeded by
    [seed], the address and the op) when the connection is refused or
    dropped mid-request — the signature of a fleet worker being
    crash-replaced under us. All vrpd analysis ops are idempotent, so the
    replay against the replacement worker answers byte-identically. A
    [busy] response (an overloaded daemon shedding the request) is also
    replayed, after sleeping its [retry_after_ms] hint plus jitter — so a
    client waiting out a saturated daemon eventually gets the same answer
    an idle daemon gives. Retry stops after [attempts] tries (default 8,
    backoff base [backoff_ms] default 25, capped at ~2s per wait), and an
    exhausted busy ladder returns the busy response itself; non-transient
    errors — protocol violations, mismatched response ids — are never
    retried.
    @raise Unix.Unix_error / Failure like {!request} once out of tries. *)
val request_retry :
  ?attempts:int ->
  ?backoff_ms:int ->
  ?seed:int ->
  addr:string ->
  op:string ->
  ?params:Json.t ->
  unit ->
  Protocol.response
