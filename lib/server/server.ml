(** The vrpd daemon: resident state, request handlers, accept loop (see
    the interface). *)

module Diag = Vrp_diag.Diag
module Pipeline = Vrp_core.Pipeline
module Pool = Vrp_sched.Pool
module Supervisor = Vrp_sched.Supervisor
module Summary_cache = Vrp_cache.Summary_cache
module Strutil = Vrp_util.Strutil

type settings = {
  jobs : int;
  deadline_ms : int option;
  fault : Diag.Fault.t option;
  cache_dir : string option;
  model_path : string option;
  limits : Admit.limits;
}

let default_settings =
  {
    jobs = 1;
    deadline_ms = None;
    fault = None;
    cache_dir = None;
    model_path = None;
    limits = Admit.default_limits;
  }

(* --- Registry-backed request telemetry ---

   Per-op request counters and latency histograms, admission mirrors (see
   {!Admit}), uptime, and session diff-size histograms. The [status] text
   sources its uptime/per-op lines from these cells — one bookkeeping
   path, scraped by the [metrics] op as Prometheus text. *)

let known_ops =
  [ "predict"; "analyze"; "compare"; "batch"; "status"; "evict"; "ping";
    "metrics"; "shutdown" ]

(* Bound label cardinality: unknown client-supplied op strings collapse to
   one series instead of minting one per typo. *)
let op_label op = if List.mem op known_ops then op else "unknown"

let obs_requests op =
  Vrp_obs.Metrics.counter ~help:"Requests handled, by operation"
    ~labels:[ ("op", op_label op) ] "vrpd_requests_total"

let obs_request_seconds op =
  Vrp_obs.Metrics.histogram ~help:"Request latency in seconds, by operation"
    ~labels:[ ("op", op_label op) ] "vrpd_request_seconds"

let obs_contained =
  Vrp_obs.Metrics.counter ~help:"Requests answered by the containment wrapper"
    "vrpd_requests_contained_total"

let obs_cancelled =
  Vrp_obs.Metrics.counter ~help:"Requests contained by cancellation"
    "vrpd_requests_cancelled_total"

let obs_uptime =
  Vrp_obs.Metrics.gauge ~help:"Daemon uptime in seconds" "vrpd_uptime_seconds"

let obs_start_time =
  Vrp_obs.Metrics.gauge ~help:"Daemon start time in unix seconds"
    "vrpd_start_time_seconds"

let session_size_buckets = [ 0.; 1.; 2.; 5.; 10.; 20.; 50.; 100. ]

let obs_session_changed =
  Vrp_obs.Metrics.histogram ~help:"Changed functions per session diff"
    ~buckets:session_size_buckets "vrpd_session_changed_functions"

let obs_session_dirty =
  Vrp_obs.Metrics.histogram ~help:"Dirty functions per session diff"
    ~buckets:session_size_buckets "vrpd_session_dirty_functions"

let obs_session_reused =
  Vrp_obs.Metrics.histogram ~help:"Reused summaries per session diff"
    ~buckets:session_size_buckets "vrpd_session_reused_functions"

type counters = {
  mutable served : int;
  mutable contained : int;
  mutable cancelled : int;
}

type t = {
  settings : settings;
  model : Vrp_learn.Tree.t option;  (* warm-loaded once at startup *)
  pool : Pool.t;
  sup : Supervisor.t;
  cache : Summary_cache.t;  (* server-wide, shared by predict/batch *)
  sessions : Session.t;
  admit : Admit.t;  (* shared by the accept loop and the request gate *)
  counters : counters;
  report : Diag.report;
  state_lock : Mutex.t;  (* counters + report *)
  acc : Accept.t;
  started : float;  (* unix time of [create]; uptime in status/metrics *)
  mutable shut : bool;
}

let create ?(settings = default_settings) () =
  (* Load the learned model once, before accepting: every request then
     serves it warm, and a bad path fails the daemon fast at startup
     instead of degrading every request. *)
  let model =
    match settings.model_path with
    | None -> None
    | Some path -> (
      match Vrp_learn.Infer.load path with
      | Ok m -> Some m
      | Error d -> failwith d.Diag.message)
  in
  {
    settings;
    model;
    pool = Pool.create ~jobs:settings.jobs ();
    sup =
      Supervisor.create
        ~policy:
          {
            Supervisor.default_policy with
            deadline_ms = settings.deadline_ms;
            retries = 0;
          }
        ();
    cache = Summary_cache.create ?disk_dir:settings.cache_dir ();
    sessions = Session.create ();
    admit = Admit.create ~limits:settings.limits ();
    counters = { served = 0; contained = 0; cancelled = 0 };
    report = Diag.create ();
    state_lock = Mutex.create ();
    acc = Accept.create ();
    started =
      (let now = Unix.gettimeofday () in
       Vrp_obs.Metrics.set obs_start_time now;
       now);
    shut = false;
  }

let settings t = t.settings
let counters t = t.counters
let admit t = t.admit
let report t = t.report

let locked t f =
  Mutex.lock t.state_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.state_lock) f

(* --- Request parameter extraction --- *)

let opt_string p k = Json.mem_string k p
let opt_bool p k = Option.value ~default:false (Json.mem_bool k p)

let req_string p k =
  match Json.mem_string k p with
  | Some v -> v
  | None -> failwith (Printf.sprintf "missing required string param %S" k)

let int_list p k =
  match Json.mem_list k p with
  | None -> None
  | Some xs ->
    Some
      (List.map
         (fun v ->
           match Json.get_int v with
           | Some n -> n
           | None -> failwith (Printf.sprintf "param %S must be a list of ints" k))
         xs)

(* The request's fault spec, falling back to the daemon-wide one. *)
let fault_of t p =
  match opt_string p "fault" with
  | None -> t.settings.fault
  | Some spec -> (
    match Diag.Fault.parse spec with
    | Ok f -> Some f
    | Error msg -> failwith msg)

let opts_of t p =
  {
    Ops.default_opts with
    Ops.numeric = opt_bool p "numeric";
    diagnostics = opt_bool p "diagnostics";
    strict = opt_bool p "strict";
    fault = fault_of t p;
    model =
      (match t.model with
      | Some m -> Ops.Loaded_model m
      | None -> Ops.No_model);
  }

(* --- Handlers ---

   Each returns (outcome, data); the dispatch wrapper turns it into a
   response and anything raised into a contained error response. *)

let outcome_ok (o : Ops.outcome) data = (o, data)

(* A crash-file fault matching this request's source name models a worker
   dying mid-request: it fires outside analysis containment so only the
   per-request wrapper may catch it (the daemon must survive it). *)
let check_crash_file ~fault name =
  match fault with
  | Some (Diag.Fault.Crash_file affix) when Strutil.is_infix ~affix name ->
    raise (Diag.Fault.Injected (Printf.sprintf "injected request crash in %s" name))
  | _ -> ()

(* Run an analysis under the per-request deadline: the supervisor's
   monitor cancels the token when the deadline passes, the engine and the
   interprocedural wave driver observe it, and every not-yet-analyzed
   function demotes to Ball–Larus — the request still completes, with the
   degradation in its diagnostics. [budget_ms] is the request's own
   propagated wall-clock budget (already net of queue wait); the tighter
   of it and the daemon-wide deadline governs. *)
let supervised t ~label ?budget_ms f =
  let deadline_ms =
    match (t.settings.deadline_ms, budget_ms) with
    | Some a, Some b -> Some (min a b)
    | (Some _ as a), None -> a
    | None, b -> b
  in
  Supervisor.supervise t.sup ~name:label ?deadline_ms (fun token -> f (Some token))

let handle_predict t ?budget_ms p =
  let source = req_string p "source" in
  let name = Option.value ~default:"<request>" (opt_string p "name") in
  let opts = opts_of t p in
  check_crash_file ~fault:opts.Ops.fault name;
  supervised t ~label:("predict " ^ name) ?budget_ms (fun cancel ->
      let opts = { opts with Ops.cancel } in
      (* The warm server-wide cache serves repeat sources; skip it under
         fault injection so degradations replay exactly as one-shot. *)
      match Ops.compile_outcome source with
      | Error o -> outcome_ok o []
      | Ok c ->
        let analyze_fn =
          if opts.Ops.fault = None then
            Some (Summary_cache.memoized ~slot_prefix:name t.cache c.Pipeline.ssa)
          else None
        in
        outcome_ok (Ops.predict_compiled ~pool:t.pool ?analyze_fn ~opts c) [])

let plan_json (plan : Session.plan) =
  Json.Obj
    [
      ("fresh", Json.Bool plan.Session.fresh);
      ("functions", Json.Int plan.Session.functions);
      ("changed", Json.List (List.map (fun f -> Json.String f) plan.Session.changed));
      ("dirty", Json.List (List.map (fun f -> Json.String f) plan.Session.dirty));
      ("reused", Json.List (List.map (fun f -> Json.String f) plan.Session.reused));
    ]

let cache_counters_json (c : Summary_cache.counters) =
  Json.Obj
    [
      ("hits", Json.Int c.Summary_cache.hits);
      ("disk_hits", Json.Int c.Summary_cache.disk_hits);
      ("misses", Json.Int c.Summary_cache.misses);
      ("stores", Json.Int c.Summary_cache.stores);
      ("invalidations", Json.Int c.Summary_cache.invalidations);
      ("quarantined", Json.Int c.Summary_cache.quarantined);
    ]

let handle_analyze t ?budget_ms p =
  let sid = req_string p "session" in
  let source = req_string p "source" in
  let name = Option.value ~default:"<source>" (opt_string p "name") in
  let opts = opts_of t p in
  check_crash_file ~fault:opts.Ops.fault name;
  let s = Session.find_or_create t.sessions sid in
  (* Serializing per session is what makes the counter delta below exact
     request-scoped accounting on the session's private cache. *)
  Session.with_lock s (fun () ->
      match Ops.compile_outcome source with
      | Error o -> outcome_ok o []
      | Ok c ->
        let plan = Session.plan s ~name c.Pipeline.ssa in
        Vrp_obs.Metrics.observe obs_session_changed
          (float_of_int (List.length plan.Session.changed));
        Vrp_obs.Metrics.observe obs_session_dirty
          (float_of_int (List.length plan.Session.dirty));
        Vrp_obs.Metrics.observe obs_session_reused
          (float_of_int (List.length plan.Session.reused));
        let cache = Session.cache s in
        let before = Summary_cache.counters cache in
        let o =
          supervised t ~label:(Printf.sprintf "analyze %s %s" sid name) ?budget_ms
            (fun cancel ->
              let opts = { opts with Ops.cancel } in
              let analyze_fn =
                Summary_cache.memoized ~slot_prefix:name cache c.Pipeline.ssa
              in
              Ops.predict_compiled ~pool:t.pool ~analyze_fn ~opts c)
        in
        let delta = Summary_cache.delta ~before (Summary_cache.counters cache) in
        outcome_ok o [ ("plan", plan_json plan); ("cache", cache_counters_json delta) ])

let handle_compare t ?budget_ms p =
  let source = req_string p "source" in
  let name = Option.value ~default:"<request>" (opt_string p "name") in
  let opts = opts_of t p in
  check_crash_file ~fault:opts.Ops.fault name;
  let train = Option.value ~default:[ 100; 1 ] (int_list p "train") in
  let ref_args = Option.value ~default:[ 1000; 2 ] (int_list p "reference") in
  supervised t ~label:("compare " ^ name) ?budget_ms (fun cancel ->
      let opts = { opts with Ops.cancel } in
      outcome_ok (Ops.compare_predictors ~opts ~train ~ref_args ~source ()) [])

let handle_batch t p =
  let files =
    match Json.mem_list "files" p with
    | None -> failwith "missing required list param \"files\""
    | Some xs ->
      List.map
        (fun v ->
          match (Json.mem_string "name" v, Json.mem_string "source" v) with
          | Some name, Some source -> (name, source)
          | _ -> failwith "each batch file needs string \"name\" and \"source\"")
        xs
  in
  let opts = opts_of t p in
  let opts =
    match Json.mem_int "jobs" p with
    | Some jobs -> { opts with Ops.jobs }
    | None -> { opts with Ops.jobs = t.settings.jobs }
  in
  (* Batch runs on its own transient pool (pooled tasks must not submit to
     the pool they run on); the server-wide cache still serves it warm. *)
  outcome_ok (Ops.batch ~cache:t.cache ~supervisor:t.sup ~opts ~sources:files ()) []

let handle_status t =
  let c = t.counters in
  let sessions = Session.ids t.sessions in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "vrpd %s\n" Version.version);
  Buffer.add_string buf
    (Printf.sprintf "jobs %d, deadline %s\n" t.settings.jobs
       (match t.settings.deadline_ms with
       | Some ms -> Printf.sprintf "%dms" ms
       | None -> "none"));
  (match t.settings.model_path with
  | Some path ->
    Buffer.add_string buf
      (Printf.sprintf "model %s (digest %s)\n" path
         (match t.model with
         | Some m -> Vrp_learn.Tree.digest m
         | None -> "unloaded"))
  | None -> ());
  Buffer.add_string buf
    (Printf.sprintf "requests: %d served, %d contained, %d cancelled\n" c.served
       c.contained c.cancelled);
  let uptime = Unix.gettimeofday () -. t.started in
  Vrp_obs.Metrics.set obs_uptime uptime;
  Buffer.add_string buf (Printf.sprintf "uptime: %.1fs\n" uptime);
  let op_counts =
    List.map (fun op -> (op, Vrp_obs.Metrics.value (obs_requests op))) known_ops
  in
  let total_requests = List.fold_left (fun acc (_, n) -> acc + n) 0 op_counts in
  Buffer.add_string buf
    (Printf.sprintf "ops: %d total (%s)\n" total_requests
       (String.concat ", "
          (List.map (fun (op, n) -> Printf.sprintf "%s %d" op n) op_counts)));
  Buffer.add_string buf
    (Printf.sprintf "limits: %d conns, %d inflight, %d queued, %dms idle timeout\n"
       t.settings.limits.Admit.max_conns t.settings.limits.Admit.max_inflight
       t.settings.limits.Admit.max_queue t.settings.limits.Admit.idle_timeout_ms);
  Buffer.add_string buf (Admit.counters_line t.admit ^ "\n");
  Buffer.add_string buf
    (Printf.sprintf "sessions: %d%s\n" (List.length sessions)
       (if sessions = [] then "" else " (" ^ String.concat ", " sessions ^ ")"));
  Buffer.add_string buf (Summary_cache.counters_line t.cache ^ "\n");
  Buffer.add_string buf (Supervisor.counters_line t.sup ^ "\n");
  let a = Admit.counters t.admit in
  ( { Ops.out = Buffer.contents buf; err = ""; code = 0 },
    [
      ("version", Json.String Version.version);
      ("jobs", Json.Int t.settings.jobs);
      ("sessions", Json.List (List.map (fun s -> Json.String s) sessions));
      ("served", Json.Int c.served);
      ("contained", Json.Int c.contained);
      ("cancelled", Json.Int c.cancelled);
      ("uptime_s", Json.Float uptime);
      ("requests_total", Json.Int total_requests);
      ( "ops",
        Json.Obj (List.map (fun (op, n) -> (op, Json.Int n)) op_counts) );
      ("inflight", Json.Int (Admit.inflight t.admit));
      ("shed", Json.Int (a.Admit.shed_conns + a.Admit.shed_requests));
      ("expired", Json.Int a.Admit.expired);
      ("idle_closed", Json.Int a.Admit.idle_closed);
      ("cache", cache_counters_json (Summary_cache.counters t.cache));
    ]
    @
    match t.settings.model_path with
    | Some path -> [ ("model", Json.String path) ]
    | None -> [] )

let handle_evict t =
  let n = Summary_cache.evict_memory t.cache + Session.evict_all t.sessions in
  ( { Ops.out = Printf.sprintf "evicted %d cached summaries\n" n; err = ""; code = 0 },
    [ ("evicted", Json.Int n) ] )

(* Ping doubles as the fleet's load probe: inflight/capacity/shed let the
   front door route around saturated workers, not just dead ones. *)
let handle_ping t =
  let a = Admit.counters t.admit in
  ( { Ops.out = ""; err = ""; code = 0 },
    [
      ("pong", Json.Bool true);
      ("pid", Json.Int (Unix.getpid ()));
      ("inflight", Json.Int (Admit.inflight t.admit));
      ("capacity", Json.Int t.settings.limits.Admit.max_inflight);
      ("shed", Json.Int (a.Admit.shed_conns + a.Admit.shed_requests));
    ] )

let handle_shutdown t =
  Accept.request_stop t.acc;
  ({ Ops.out = ""; err = ""; code = 0 }, [ ("stopping", Json.Bool true) ])

(* Prometheus scrape. Control plane like [ping]: bypasses admission so an
   overloaded or shedding daemon stays scrapeable. *)
let handle_metrics t =
  Vrp_obs.Metrics.set obs_uptime (Unix.gettimeofday () -. t.started);
  ({ Ops.out = Vrp_obs.Metrics.render (); err = ""; code = 0 }, [])

(* --- Dispatch + per-request containment --- *)

let note t severity fmt =
  Printf.ksprintf
    (fun msg -> locked t (fun () -> Diag.add t.report severity Diag.Server_event msg))
    fmt

(* Ops that do analysis work take an in-flight slot; the control plane
   (status, ping, metrics, shutdown, evict) always answers, precisely so
   overload stays observable and stoppable while the daemon is shedding. *)
let analysis_op = function
  | "predict" | "analyze" | "compare" | "batch" -> true
  | _ -> false

let handle t (req : Protocol.request) =
  (* A slow-worker fault wedges every request this daemon handles — pings
     included — so a fleet's health check sees it as hung. *)
  (match t.settings.fault with
  | Some (Diag.Fault.Slow_worker ms) -> Thread.delay (float_of_int ms /. 1000.)
  | _ -> ());
  let dispatch ?budget_ms () =
    match req.Protocol.op with
    | "predict" -> handle_predict t ?budget_ms req.Protocol.params
    | "analyze" -> handle_analyze t ?budget_ms req.Protocol.params
    | "compare" -> handle_compare t ?budget_ms req.Protocol.params
    | "batch" -> handle_batch t req.Protocol.params
    | "status" -> handle_status t
    | "evict" -> handle_evict t
    | "ping" -> handle_ping t
    | "metrics" -> handle_metrics t
    | "shutdown" -> handle_shutdown t
    | op -> failwith (Printf.sprintf "unknown op %S" op)
  in
  let contained ?(cancelled = false) ~kind msg =
    locked t (fun () ->
        t.counters.contained <- t.counters.contained + 1;
        if cancelled then t.counters.cancelled <- t.counters.cancelled + 1);
    Vrp_obs.Metrics.inc obs_contained;
    if cancelled then Vrp_obs.Metrics.inc obs_cancelled;
    note t Diag.Warning "%s id=%d contained: %s" req.Protocol.op req.Protocol.id msg;
    Protocol.error_response ~rid:req.Protocol.id ~kind msg
  in
  let run ?budget_ms () =
    Vrp_obs.Metrics.inc (obs_requests req.Protocol.op);
    Vrp_obs.Metrics.time (obs_request_seconds req.Protocol.op) @@ fun () ->
    Vrp_obs.Trace.with_span ("op:" ^ op_label req.Protocol.op) @@ fun () ->
    match dispatch ?budget_ms () with
    | (o : Ops.outcome), data ->
      locked t (fun () -> t.counters.served <- t.counters.served + 1);
      note t Diag.Info "%s id=%d served code=%d" req.Protocol.op req.Protocol.id
        o.Ops.code;
      {
        Protocol.rid = req.Protocol.id;
        ok = true;
        code = o.Ops.code;
        out = o.Ops.out;
        err = o.Ops.err;
        data;
      }
    | exception Diag.Fault.Injected msg -> contained ~kind:"fault-injected" msg
    | exception Diag.Cancel.Cancelled name ->
      contained ~cancelled:true ~kind:"cancelled" ("request cancelled: " ^ name)
    | exception Failure msg -> contained ~kind:"bad-request" msg
    | exception e -> contained ~kind:"crashed" (Printexc.to_string e)
  in
  if not (analysis_op req.Protocol.op) then run ()
  else begin
    (* The client's deadline_ms param is a relative budget stamped at send
       time; it becomes an absolute instant on arrival, so the wait for an
       in-flight slot is charged against it — a request that would start
       already-expired is shed, never dispatched. *)
    let arrival = Unix.gettimeofday () in
    let deadline =
      match Json.mem_int "deadline_ms" req.Protocol.params with
      | Some ms when ms >= 0 -> Some (arrival +. (float_of_int ms /. 1000.))
      | _ -> None
    in
    let expired () =
      note t Diag.Warning "%s id=%d shed: deadline expired before dispatch"
        req.Protocol.op req.Protocol.id;
      Protocol.error_response ~rid:req.Protocol.id ~kind:"deadline-expired"
        "request deadline expired before dispatch"
    in
    match Admit.admit t.admit ?deadline () with
    | Admit.Shed retry_after_ms ->
      note t Diag.Warning "%s id=%d shed: over capacity, retry in %dms"
        req.Protocol.op req.Protocol.id retry_after_ms;
      Protocol.busy_response ~rid:req.Protocol.id ~retry_after_ms
        (Printf.sprintf "server at capacity (%d in flight); retry later"
           t.settings.limits.Admit.max_inflight)
    | Admit.Expired -> expired ()
    | Admit.Admitted ->
      Fun.protect
        ~finally:(fun () -> Admit.release t.admit)
        (fun () ->
          let budget_ms =
            Option.map
              (fun d -> int_of_float ((d -. Unix.gettimeofday ()) *. 1000.))
              deadline
          in
          match budget_ms with
          | Some b when b <= 0 -> expired ()
          | _ -> run ?budget_ms ())
  end

(* --- Listeners and the accept loop --- *)

let listen_unix path =
  (match Unix.lstat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> (
    (* Probe before reclaiming: a connect that succeeds means a live daemon
       is serving this path, and stealing it would silently split traffic
       between two servers. Only a refused connection marks it stale. *)
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect probe (Unix.ADDR_UNIX path) with
    | () ->
      (try Unix.close probe with _ -> ());
      failwith
        (Printf.sprintf
           "%s is already served by a live daemon; stop it first or pick another socket path"
           path)
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) ->
      (try Unix.close probe with _ -> ());
      (try Unix.unlink path with Unix.Unix_error (Unix.ENOENT, _, _) -> ())
    | exception e ->
      (try Unix.close probe with _ -> ());
      raise e)
  | _ -> ()
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  fd

let listen_tcp ~host ~port =
  let addr =
    match (Unix.getaddrinfo host (string_of_int port) [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM ]) with
    | ai :: _ -> ai.Unix.ai_addr
    | [] -> failwith (Printf.sprintf "cannot resolve %s:%d" host port)
  in
  let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd addr;
  Unix.listen fd 64;
  fd

let stop t = Accept.stop t.acc
let stopping t = Accept.stopping t.acc

let serve t listen_fd =
  Accept.serve t.acc ~handle:(handle t)
    ~on_bad_request:(fun _msg ->
      locked t (fun () -> t.counters.contained <- t.counters.contained + 1))
    ~admit:t.admit listen_fd

let shutdown t =
  if not t.shut then begin
    t.shut <- true;
    Pool.shutdown t.pool;
    Supervisor.shutdown t.sup;
    Summary_cache.close t.cache;
    Accept.close t.acc
  end
