(** Minimal JSON codec (see the interface). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- Printing --- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 || Char.code c >= 0x7f ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
    (* %.17g round-trips every finite double; integral floats keep a ".0"
       marker so they re-parse as Float. *)
    if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string buf (Printf.sprintf "%.1f" f)
    else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  | String s -> escape_string buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        write buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_string buf k;
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* --- Parsing: plain recursive descent over the byte string --- *)

exception Bad of string

type state = { s : string; mutable pos : int }

let error st msg = raise (Bad (Printf.sprintf "byte %d: %s" st.pos msg))

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> error st (Printf.sprintf "expected %C, got %C" c c')
  | None -> error st (Printf.sprintf "expected %C, got end of input" c)

let literal st word value =
  if
    st.pos + String.length word <= String.length st.s
    && String.sub st.s st.pos (String.length word) = word
  then begin
    st.pos <- st.pos + String.length word;
    value
  end
  else error st (Printf.sprintf "expected %s" word)

let hex4 st =
  if st.pos + 4 > String.length st.s then error st "truncated \\u escape";
  let h = String.sub st.s st.pos 4 in
  st.pos <- st.pos + 4;
  match int_of_string_opt ("0x" ^ h) with
  | Some n -> n
  | None -> error st "bad \\u escape"

(* Codepoints < 256 decode to the raw byte (the printer's inverse); larger
   ones are emitted as UTF-8 so nothing is silently dropped. *)
let add_codepoint buf n =
  if n < 0x100 then Buffer.add_char buf (Char.chr n)
  else if n < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xc0 lor (n lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (n land 0x3f)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xe0 lor (n lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((n lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (n land 0x3f)))
  end

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
      advance st;
      match peek st with
      | None -> error st "unterminated escape"
      | Some c ->
        advance st;
        (match c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' -> add_codepoint buf (hex4 st)
        | c -> error st (Printf.sprintf "bad escape \\%C" c));
        loop ())
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    match peek st with
    | Some c when is_num_char c -> true
    | _ -> false
  do
    advance st
  done;
  let tok = String.sub st.s start (st.pos - start) in
  let is_float = String.exists (function '.' | 'e' | 'E' -> true | _ -> false) tok in
  if is_float then
    match float_of_string_opt tok with
    | Some f -> Float f
    | None -> error st (Printf.sprintf "bad number %S" tok)
  else
    match int_of_string_opt tok with
    | Some n -> Int n
    | None -> error st (Printf.sprintf "bad number %S" tok)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some 'n' -> literal st "null" Null
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some '"' -> String (parse_string st)
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      List []
    end
    else begin
      let items = ref [ parse_value st ] in
      skip_ws st;
      while peek st = Some ',' do
        advance st;
        items := parse_value st :: !items;
        skip_ws st
      done;
      expect st ']';
      List (List.rev !items)
    end
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let field () =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        (k, v)
      in
      let fields = ref [ field () ] in
      skip_ws st;
      while peek st = Some ',' do
        advance st;
        fields := field () :: !fields;
        skip_ws st
      done;
      expect st '}';
      Obj (List.rev !fields)
    end
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> error st (Printf.sprintf "unexpected %C" c)

let parse s =
  let st = { s; pos = 0 } in
  match parse_value st with
  | v ->
    skip_ws st;
    if st.pos <> String.length s then
      Error (Printf.sprintf "byte %d: trailing bytes after document" st.pos)
    else Ok v
  | exception Bad msg -> Error msg

(* --- Accessors --- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let get_string = function String s -> Some s | _ -> None
let get_int = function Int n -> Some n | _ -> None

let get_float = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None

let get_bool = function Bool b -> Some b | _ -> None
let get_list = function List xs -> Some xs | _ -> None

let mem_string key v = Option.bind (member key v) get_string
let mem_int key v = Option.bind (member key v) get_int
let mem_bool key v = Option.bind (member key v) get_bool
let mem_list key v = Option.bind (member key v) get_list
