(** Per-client sessions and incremental invalidation planning (see the
    interface). *)

module Ir = Vrp_ir.Ir
module Summary_cache = Vrp_cache.Summary_cache
module Digest_key = Vrp_cache.Digest_key
module Callgraph = Vrp_sched.Callgraph

type session = {
  sid : string;
  lock : Mutex.t;
  cache : Summary_cache.t;
  (* source name -> (function, SSA digest) of the last submission *)
  digests : (string, (string * string) list) Hashtbl.t;
  mutable last_used : float;  (* LRU clock for the table bound *)
}

type t = {
  table : (string, session) Hashtbl.t;
  table_lock : Mutex.t;
  max_sessions : int;
}

let create ?(max_sessions = 512) () =
  if max_sessions < 1 then invalid_arg "Session.create: max_sessions must be >= 1";
  { table = Hashtbl.create 8; table_lock = Mutex.create (); max_sessions }

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* The table is bounded so a client minting fresh session ids (or millions
   of clients each minting one) cannot grow daemon memory without bound:
   admitting a new session at capacity evicts the least-recently-used one.
   An evicted session's live handles stay valid — its in-flight request
   completes on the detached record; only the warm state is lost, and a
   later request under that id starts fresh. *)
let evict_lru_locked t =
  let victim =
    Hashtbl.fold
      (fun _ s acc ->
        match acc with
        | Some v when v.last_used <= s.last_used -> acc
        | _ -> Some s)
      t.table None
  in
  match victim with None -> () | Some s -> Hashtbl.remove t.table s.sid

let find_or_create t sid =
  locked t.table_lock (fun () ->
      match Hashtbl.find_opt t.table sid with
      | Some s ->
        s.last_used <- Unix.gettimeofday ();
        s
      | None ->
        if Hashtbl.length t.table >= t.max_sessions then evict_lru_locked t;
        let s =
          {
            sid;
            lock = Mutex.create ();
            cache = Summary_cache.create ();
            digests = Hashtbl.create 4;
            last_used = Unix.gettimeofday ();
          }
        in
        Hashtbl.replace t.table sid s;
        s)

let drop t sid =
  locked t.table_lock (fun () ->
      let existed = Hashtbl.mem t.table sid in
      Hashtbl.remove t.table sid;
      existed)

let count t = locked t.table_lock (fun () -> Hashtbl.length t.table)

let ids t =
  locked t.table_lock (fun () ->
      Hashtbl.fold (fun sid _ acc -> sid :: acc) t.table [] |> List.sort compare)

let evict_all t =
  let sessions =
    locked t.table_lock (fun () ->
        Hashtbl.fold (fun _ s acc -> s :: acc) t.table [])
  in
  List.fold_left (fun n s -> n + Summary_cache.evict_memory s.cache) 0 sessions

let id s = s.sid
let cache s = s.cache
let with_lock s f = locked s.lock f

type plan = {
  fresh : bool;
  functions : int;
  changed : string list;
  dirty : string list;
  reused : string list;
}

(* Names reachable from [seeds] through the call graph — the functions
   whose SCC waves run downstream of an edit. *)
let descendants cg seeds =
  let seen = Hashtbl.create 16 in
  let rec visit name =
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.replace seen name ();
      List.iter visit (Callgraph.callees cg name)
    end
  in
  List.iter visit seeds;
  seen

let plan s ~name (program : Ir.program) =
  let now =
    List.map (fun (fn : Ir.fn) -> (fn.Ir.fname, Digest_key.fn_digest fn)) program.Ir.fns
    |> List.sort compare
  in
  let prev = Hashtbl.find_opt s.digests name in
  Hashtbl.replace s.digests name now;
  match prev with
  | None ->
    {
      fresh = true;
      functions = List.length now;
      changed = List.map fst now;
      dirty = List.map fst now;
      reused = [];
    }
  | Some prev ->
    let changed =
      List.filter_map
        (fun (fname, digest) ->
          match List.assoc_opt fname prev with
          | Some d when String.equal d digest -> None
          | _ -> Some fname)
        now
    in
    let cg = Callgraph.build program in
    let dirty_set = descendants cg changed in
    let dirty = List.filter (fun (f, _) -> Hashtbl.mem dirty_set f) now in
    let reused = List.filter (fun (f, _) -> not (Hashtbl.mem dirty_set f)) now in
    {
      fresh = false;
      functions = List.length now;
      changed;
      dirty = List.map fst dirty;
      reused = List.map fst reused;
    }
