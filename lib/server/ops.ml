(** Shared CLI/server operation layer (see the interface).

    The rendering code here is the former body of [bin/vrpc.ml]'s
    predict/compare/batch subcommands, lifted into a library so the daemon
    serves byte-identical output. Any format change here changes both
    surfaces at once — which is the point. *)

module Ir = Vrp_ir.Ir
module Diag = Vrp_diag.Diag
module Engine = Vrp_core.Engine
module Pipeline = Vrp_core.Pipeline
module Interproc = Vrp_core.Interproc
module Interp = Vrp_profile.Interp
module Pool = Vrp_sched.Pool
module Wavefront = Vrp_sched.Wavefront
module Callgraph = Vrp_sched.Callgraph
module Batch = Vrp_sched.Batch
module Supervisor = Vrp_sched.Supervisor
module Summary_cache = Vrp_cache.Summary_cache
module Infer = Vrp_learn.Infer

type model_spec =
  | No_model
  | Default_model
  | Model_file of string
  | Loaded_model of Vrp_learn.Tree.t

type opts = {
  numeric : bool;
  jobs : int;
  diagnostics : bool;
  strict : bool;
  fault : Diag.Fault.t option;
  cancel : Diag.Cancel.token option;
  model : model_spec;
}

let default_opts =
  {
    numeric = false;
    jobs = 1;
    diagnostics = false;
    strict = false;
    fault = None;
    cancel = None;
    model = No_model;
  }

(* Turn a model spec into a loaded tree. A file that fails to load becomes
   a [Model_error] diagnostic on the report (so [--strict] exits 3 and
   [--diagnostics] shows why) and the run degrades cleanly to Ball–Larus. *)
let resolve_model ~report = function
  | No_model -> None
  | Default_model -> Some (Lazy.force Infer.default)
  | Loaded_model m -> Some m
  | Model_file path -> (
    match Infer.load path with
    | Ok m -> Some m
    | Error d ->
      Diag.add report d.Diag.severity d.Diag.kind
        (d.Diag.message ^ "; degrading to Ball–Larus");
      None)

type outcome = { out : string; err : string; code : int }

let config_of opts =
  let base = if opts.numeric then Engine.numeric_only_config else Engine.default_config in
  { base with Engine.fault = opts.fault; cancel = opts.cancel }

let compile_outcome source =
  match Pipeline.compile_result source with
  | Ok compiled -> Ok compiled
  | Error d ->
    Error { out = ""; err = "vrpc: " ^ d.Diag.message ^ "\n"; code = 1 }

(* Post-analysis bookkeeping shared by every analysis op: diagnostics
   rendering under --diagnostics and the --strict exit code. *)
let finish ~opts ~report out =
  let err = if opts.diagnostics then Diag.render report else "" in
  let code = if opts.strict && Diag.degraded report then 3 else 0 in
  { out; err; code }

(* Branches the report attributes to heuristic fallback, for output
   annotation: (fn, block) -> caused by degradation (vs ordinary ⊥). *)
let fallback_branches report =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (d : Diag.diag) ->
      match (d.Diag.kind, d.Diag.loc.Diag.fn, d.Diag.loc.Diag.block) with
      | Diag.Fallback_heuristic, Some fn, Some bid ->
        let degraded = d.Diag.severity <> Diag.Info in
        let prev = Option.value ~default:false (Hashtbl.find_opt tbl (fn, bid)) in
        Hashtbl.replace tbl (fn, bid) (degraded || prev)
      | _ -> ())
    (Diag.to_list report);
  tbl

let marker_of fb key =
  match Hashtbl.find_opt fb key with
  | Some true -> "!" (* degraded: crash / fuel / timeout *)
  | Some false -> "*" (* ordinary ⊥-range heuristic fallback *)
  | None -> ""

(* --- predict --- *)

let predict_compiled ?pool ?analyze_fn ~opts (c : Pipeline.compiled) =
  let report = Diag.create () in
  let config = config_of opts in
  let model = resolve_model ~report opts.model in
  let fallback = Option.map Infer.fallback model in
  (* Always schedule through the SCC wavefront plan so any parallelism is
     byte-identical to --jobs 1 (the sequential reference). *)
  let groups = Callgraph.scc_groups c.Pipeline.ssa in
  let run pool =
    Pipeline.vrp_predictions ~config ~report ~groups
      ~run_tasks:(Wavefront.runner pool) ?analyze_fn ?fallback c.Pipeline.ssa
  in
  let vrp, _ =
    match pool with
    | Some pool -> run pool
    | None -> Pool.with_pool ~jobs:opts.jobs run
  in
  let bl = Vrp_predict.Predictor.ball_larus c.Pipeline.ssa in
  let nf = Vrp_predict.Predictor.ninety_fifty c.Pipeline.ssa in
  let fb = fallback_branches report in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%-28s %9s %12s %8s\n" "branch" "vrp" "ball-larus" "90/50");
  List.iter
    (fun (((fname, bid) as key), (br : Ir.branch)) ->
      let get tbl = Option.value ~default:Float.nan (Hashtbl.find_opt tbl key) in
      Buffer.add_string buf
        (Printf.sprintf "%-28s %7.1f%%%-1s %11.1f%% %7.1f%%\n"
           (Printf.sprintf "%s.B%d (%s %s %s)" fname bid (Ir.operand_to_string br.ba)
              (Vrp_lang.Ast.relop_to_string br.rel)
              (Ir.operand_to_string br.bb))
           (100.0 *. get vrp) (marker_of fb key) (100.0 *. get bl) (100.0 *. get nf)))
    (Vrp_predict.Predictor.branches c.Pipeline.ssa);
  if Hashtbl.length fb > 0 then
    Buffer.add_string buf
      (if model <> None then
         "(* = learned-model fallback on ⊥ range, ! = degraded: crashed, \
          fuel-starved or timed-out analysis)\n"
       else
         "(* = Ball–Larus fallback on ⊥ range, ! = degraded: crashed, \
          fuel-starved or timed-out analysis)\n");
  finish ~opts ~report (Buffer.contents buf)

let predict ?pool ?analyze_fn ~opts ~source () =
  match compile_outcome source with
  | Error o -> o
  | Ok c -> predict_compiled ?pool ?analyze_fn ~opts c

(* --- compare --- *)

let compare_predictors ~opts ~train ~ref_args ~source () =
  match compile_outcome source with
  | Error o -> o
  | Ok c ->
    let report = Diag.create () in
    (* The comparison's full-VRP run historically uses the default (not the
       numeric) configuration — "vrp-numeric" is its own fixed column. *)
    let config =
      { Engine.default_config with Engine.fault = opts.fault; cancel = opts.cancel }
    in
    let train = (Interp.run c.Pipeline.ssa ~args:train).Interp.profile in
    let observed = (Interp.run c.Pipeline.ssa ~args:ref_args).Interp.profile in
    (* The comparison always shows the learned ladder: without an explicit
       model the embedded default supplies the "vrp+learned" column. *)
    let model =
      resolve_model ~report
        (match opts.model with No_model -> Default_model | m -> m)
    in
    let fallback = Option.map Infer.fallback model in
    let predictors =
      Pipeline.all_predictors ~report ~config ?fallback ~train c.Pipeline.ssa
    in
    let fb = fallback_branches report in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf (Printf.sprintf "%-24s %8s" "branch" "actual");
    List.iter (fun (name, _) -> Buffer.add_string buf (Printf.sprintf " %12s" name)) predictors;
    Buffer.add_char buf '\n';
    let keys =
      Hashtbl.fold
        (fun key (st : Interp.branch_stats) acc ->
          if st.Interp.total > 0 then (key, st) :: acc else acc)
        observed.Interp.branches []
      |> List.sort compare
    in
    List.iter
      (fun (((fname, bid) as key), (st : Interp.branch_stats)) ->
        let actual = float_of_int st.Interp.taken /. float_of_int st.Interp.total in
        Buffer.add_string buf
          (Printf.sprintf "%-24s %7.1f%%"
             (Printf.sprintf "%s.B%d%s" fname bid (marker_of fb key))
             (100.0 *. actual));
        List.iter
          (fun (_, p) ->
            let v = Option.value ~default:Float.nan (Hashtbl.find_opt p key) in
            Buffer.add_string buf (Printf.sprintf " %11.1f%%" (100.0 *. v)))
          predictors;
        Buffer.add_char buf '\n')
      keys;
    List.iter
      (fun (name, p) ->
        let errs = Vrp_evaluation.Error_analysis.branch_errors ~observed p in
        Buffer.add_string buf
          (Printf.sprintf "mean |error| %-12s unweighted %.2f pp, weighted %.2f pp\n" name
             (Vrp_evaluation.Error_analysis.mean_error ~weighted:false errs)
             (Vrp_evaluation.Error_analysis.mean_error ~weighted:true errs)))
      predictors;
    if Hashtbl.length fb > 0 then
      Buffer.add_string buf "(* = vrp used Ball–Larus fallback, ! = degraded analysis)\n";
    finish ~opts ~report (Buffer.contents buf)

(* --- batch --- *)

(* One fault spec, routed to the layer it exercises: the cache writer, the
   journal writer, or the analysis engine. *)
let route_fault fault =
  match fault with
  | Some (Diag.Fault.Corrupt_cache _) -> (fault, None, None)
  | Some (Diag.Fault.Torn_journal _) -> (None, fault, None)
  | _ -> (None, None, fault)

let batch ?cache ?supervisor ?journal ?journal_fault ~opts ~sources () =
  let _, _, engine_fault = route_fault opts.fault in
  let config = { (config_of opts) with Engine.fault = engine_fault } in
  let t0 = Unix.gettimeofday () in
  let results =
    Batch.analyze_sources ~config ?cache ?supervisor ?journal ?journal_fault
      ~jobs:opts.jobs sources
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  let a = Batch.aggregate results in
  let err = Buffer.create 256 in
  Buffer.add_string err
    (Printf.sprintf
       "analyzed %d files (%d functions, %d branches) in %.3fs with %d job%s (%.1f functions/s)\n"
       a.Batch.files a.Batch.functions a.Batch.branches elapsed opts.jobs
       (if opts.jobs = 1 then "" else "s")
       (if elapsed > 0.0 then float_of_int a.Batch.functions /. elapsed else 0.0));
  if journal <> None then
    Buffer.add_string err
      (Printf.sprintf "journal: %d of %d file(s) resumed from checkpoint\n"
         a.Batch.resumed_files a.Batch.files);
  Option.iter
    (fun s -> Buffer.add_string err (Supervisor.counters_line s ^ "\n"))
    supervisor;
  Option.iter
    (fun c -> Buffer.add_string err (Summary_cache.counters_line c ^ "\n"))
    cache;
  if opts.diagnostics then
    List.iter
      (fun (r : Batch.file_result) ->
        if Diag.count r.Batch.report > 0 then begin
          Buffer.add_string err (Printf.sprintf "-- %s --\n" r.Batch.name);
          Buffer.add_string err (Diag.render r.Batch.report)
        end)
      results;
  {
    out = Batch.render results;
    err = Buffer.contents err;
    code = Batch.exit_code ~strict:opts.strict results;
  }
