(** The vrpd analysis daemon: resident state plus the request handlers and
    the accept loop.

    One daemon holds a resident domain pool (analysis parallelism), a
    server-wide always-warm summary cache, a supervisor enforcing the
    per-request deadline, and the {!Session} table. Connection handling is
    thread-per-connection (blocking I/O on system threads); analyses run on
    the shared pool, whose task queue is safe for concurrent callers.

    Containment ladder: a function-level crash is contained by the
    interprocedural driver (demotes the function), a file-level crash by
    the batch driver (fails the file), and anything that escapes a handler
    — decode failure, injected request crash, unknown op — by the
    per-request wrapper, which answers {!Protocol.error_response} with
    exit-code-2 semantics. Nothing a request does kills the daemon.

    Operations ([op] field): [predict], [analyze] (session-scoped
    incremental predict), [compare], [batch], [status], [evict], [ping]
    (liveness-and-load probe answering [pong] plus the daemon's pid,
    inflight, capacity and shed count — the fleet's health check),
    [metrics] (Prometheus text exposition of the process-wide registry),
    [shutdown]. The analysis operations answer the byte-identical stdout
    of the corresponding one-shot CLI command (same {!Ops} code path).

    Overload: analysis ops pass through the {!Admit} gate — over
    [limits.max_inflight] they queue briefly, then shed with a structured
    [busy] response carrying [retry_after_ms]; a request stamping a
    [deadline_ms] budget is charged for its queue wait and shed as
    [deadline-expired] rather than dispatched late. The control plane
    (status/ping/evict/metrics/shutdown) bypasses the gate so an overloaded
    daemon stays observable and stoppable. *)

module Diag = Vrp_diag.Diag

type settings = {
  jobs : int;  (** resident pool width *)
  deadline_ms : int option;  (** per-request analysis deadline *)
  fault : Diag.Fault.t option;
      (** daemon-wide injected fault, same specs as [--inject-fault]; a
          per-request [fault] param overrides it. [Slow_worker ms] here
          wedges every request (pings included) by [ms] milliseconds. *)
  cache_dir : string option;
      (** disk tier for the server-wide summary cache; fleet workers point
          at the same directory and share it via its advisory locks *)
  model_path : string option;
      (** learned fallback model ([.vrpmodel]) loaded once at {!create} and
          served warm by every request; a bad path fails [create] fast *)
  limits : Admit.limits;
      (** overload limits: connection bound (accept-then-shed), in-flight
          bound (queue then shed with [busy] + [retry_after_ms]), idle
          sweeper timeout. See {!Admit}. *)
}

(** [jobs = 1], no deadline, no fault, memory-only cache, no model,
    {!Admit.default_limits}. *)
val default_settings : settings

type counters = {
  mutable served : int;  (** requests answered with [ok = true] *)
  mutable contained : int;  (** requests answered by the containment wrapper *)
  mutable cancelled : int;  (** contained specifically by cancellation *)
}

type t

val create : ?settings:settings -> unit -> t
val settings : t -> settings
val counters : t -> counters

(** The daemon's admission state: live inflight/conns gauges and the shed /
    expired / idle-closed counters (also surfaced by [status] and [ping]). *)
val admit : t -> Admit.t

(** Request-lifecycle diagnostics ([Server_event] entries). *)
val report : t -> Diag.report

(** Handle one request synchronously — the full dispatch plus containment
    wrapper, independent of any socket. The seam the tests and the bench
    drive in-process. *)
val handle : t -> Protocol.request -> Protocol.response

(** Bind a Unix-domain listener. A socket file already at the path is
    connect-probed first: if a live daemon answers, this fails with a clear
    error instead of stealing the path; only a refused connection marks the
    file stale and reclaims it. *)
val listen_unix : string -> Unix.file_descr

(** Bind a TCP listener ([SO_REUSEADDR]). *)
val listen_tcp : host:string -> port:int -> Unix.file_descr

(** Accept connections until {!stop} (or a [shutdown] request), spawning
    one handler thread per connection; on exit, wakes every in-flight
    connection and joins its thread. Does not close [listen_fd]. *)
val serve : t -> Unix.file_descr -> unit

(** Ask {!serve} to return. Safe from any thread or signal handler;
    idempotent. *)
val stop : t -> unit

(** True once a stop was requested. *)
val stopping : t -> bool

(** Release resident resources (pool domains, supervisor monitor). Call
    after {!serve} returns. Idempotent. *)
val shutdown : t -> unit
