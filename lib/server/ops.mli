(** The operation layer shared by the one-shot CLI ([vrpc predict] /
    [compare] / [batch]) and the analysis server ([vrpd]).

    Each operation renders to an {!outcome} — captured stdout bytes,
    captured stderr bytes and the would-be process exit code — instead of
    printing and exiting. The CLI prints the outcome and exits with its
    code; the server ships it over the wire. Because both run {e this}
    code, a server response is byte-identical to the one-shot CLI output
    by construction — the correctness contract the server tests pin.

    Exit-code policy (documented in [vrpc --help], pinned by tests):
    [0] success; [1] bad input program or internal analysis error;
    [2] usage error, failed batch file, or a contained server request
    crash; [3] analysis degraded under [--strict]. *)

module Diag = Vrp_diag.Diag
module Engine = Vrp_core.Engine
module Pipeline = Vrp_core.Pipeline
module Interproc = Vrp_core.Interproc

(** Which learned fallback model (if any) an operation uses for the ⊥
    branches VRP cannot predict. [predict]/[batch] default to [No_model]
    (pure Ball–Larus fallback, the historical output surface);
    [compare_predictors] promotes [No_model] to [Default_model] so the
    "vrp+learned" column always appears. A [Model_file] that fails to load
    becomes a [Model_error] diagnostic and the run degrades to Ball–Larus;
    [Loaded_model] is the server's warm-loaded handle. *)
type model_spec =
  | No_model
  | Default_model
  | Model_file of string
  | Loaded_model of Vrp_learn.Tree.t

type opts = {
  numeric : bool;  (** the paper's numeric-only configuration *)
  jobs : int;  (** analysis parallelism (byte-identical at any width) *)
  diagnostics : bool;  (** render the structured report into [err] *)
  strict : bool;  (** exit 3 when the analysis degraded *)
  fault : Diag.Fault.t option;  (** deterministic fault injection *)
  cancel : Diag.Cancel.token option;
      (** request-scoped cancellation: the engine worklist and the
          interprocedural wave driver both beat and poll it *)
  model : model_spec;  (** learned fallback tier for ⊥ branches *)
}

(** [jobs = 1], everything else off. *)
val default_opts : opts

type outcome = {
  out : string;  (** stdout bytes — the deterministic, pinned surface *)
  err : string;  (** stderr bytes — counters and timing, may vary *)
  code : int;  (** process exit code *)
}

(** The engine configuration an [opts] denotes (numeric/fault/cancel). *)
val config_of : opts -> Engine.config

(** Compile, mapping front-end failure to the CLI's exit-1 outcome
    ([vrpc: MESSAGE] on stderr). *)
val compile_outcome : string -> (Pipeline.compiled, outcome) result

(** [vrpc predict]: the three-predictor branch-probability table with
    fallback markers. [pool] reuses a resident domain pool (the server's);
    otherwise a transient pool of [opts.jobs] is used. [analyze_fn] is the
    memoization seam — pass a {!Vrp_cache.Summary_cache.memoized} wrapper
    to serve unchanged functions from a warm cache. *)
val predict :
  ?pool:Vrp_sched.Pool.t ->
  ?analyze_fn:Interproc.analyze_fn ->
  opts:opts ->
  source:string ->
  unit ->
  outcome

(** {!predict} for an already-compiled program (the server compiles once to
    plan incremental invalidation, then analyses the same program). *)
val predict_compiled :
  ?pool:Vrp_sched.Pool.t ->
  ?analyze_fn:Interproc.analyze_fn ->
  opts:opts ->
  Pipeline.compiled ->
  outcome

(** [vrpc compare]: every predictor against observed branch behaviour on
    the reference input, with mean-error summary lines. *)
val compare_predictors :
  opts:opts -> train:int list -> ref_args:int list -> source:string -> unit -> outcome

(** Split one fault spec into [(cache, journal, engine)] faults, routing it
    to the layer it exercises — shared by the CLI and the server. *)
val route_fault :
  Diag.Fault.t option ->
  Diag.Fault.t option * Diag.Fault.t option * Diag.Fault.t option

(** [vrpc batch] over in-memory [(name, source)] pairs: the deterministic
    report on [out], timing/cache/supervision counters on [err], exit code
    from {!Vrp_sched.Batch.exit_code}. The caller builds (and owns) the
    optional cache and supervisor — the server shares its resident ones
    across requests. *)
val batch :
  ?cache:Vrp_cache.Summary_cache.t ->
  ?supervisor:Vrp_sched.Supervisor.t ->
  ?journal:string ->
  ?journal_fault:Diag.Fault.t ->
  opts:opts ->
  sources:(string * string) list ->
  unit ->
  outcome
