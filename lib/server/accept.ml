(** Shared accept loop for vrpd and the fleet front door (see the
    interface). *)

type t = {
  state_lock : Mutex.t;  (* connection registry *)
  mutable stop_requested : bool;
  stop_rd : Unix.file_descr;
  stop_wr : Unix.file_descr;
  mutable conns : Unix.file_descr list;
  mutable closed : bool;
}

let create () =
  let stop_rd, stop_wr = Unix.pipe () in
  {
    state_lock = Mutex.create ();
    stop_requested = false;
    stop_rd;
    stop_wr;
    conns = [];
    closed = false;
  }

let locked t f =
  Mutex.lock t.state_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.state_lock) f

let request_stop t = t.stop_requested <- true

let stop t =
  t.stop_requested <- true;
  (* Wake the accept loop; EAGAIN on a full pipe is as good as a byte. *)
  try ignore (Unix.write t.stop_wr (Bytes.of_string "x") 0 1) with _ -> ()

let stopping t = t.stop_requested

let register_conn t fd = locked t (fun () -> t.conns <- fd :: t.conns)

let close_conn t fd =
  locked t (fun () ->
      if List.memq fd t.conns then begin
        t.conns <- List.filter (fun f -> f != fd) t.conns;
        try Unix.close fd with _ -> ()
      end)

let conn_loop t ~handle ~on_bad_request fd =
  let answer resp =
    try Protocol.write_frame fd (Protocol.encode_response resp) with _ -> ()
  in
  let rec loop () =
    match Protocol.read_frame fd with
    | None -> ()
    | Some payload ->
      (match Protocol.decode_request payload with
      | Error msg ->
        on_bad_request msg;
        answer (Protocol.error_response ~rid:0 ~kind:"bad-request" msg)
      | Ok req ->
        answer (handle req);
        (* A shutdown request stops the daemon only after its response is
           on the wire, so the requesting client gets its acknowledgment. *)
        if t.stop_requested then stop t);
      if not t.stop_requested then loop ()
    | exception Failure msg ->
      answer (Protocol.error_response ~rid:0 ~kind:"bad-frame" msg)
    | exception Unix.Unix_error _ -> ()
  in
  loop ();
  close_conn t fd

let serve t ~handle ?(on_bad_request = fun _ -> ()) listen_fd =
  let threads = ref [] in
  let rec accept_loop () =
    if not t.stop_requested then begin
      match Unix.select [ listen_fd; t.stop_rd ] [] [] (-1.0) with
      | readable, _, _ ->
        if List.memq listen_fd readable && not t.stop_requested then begin
          match Unix.accept listen_fd with
          | fd, _ ->
            register_conn t fd;
            threads :=
              Thread.create (conn_loop t ~handle ~on_bad_request) fd :: !threads
          | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) -> ()
        end;
        accept_loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
    end
  in
  accept_loop ();
  (* Wake any connection thread blocked in read: a shutdown delivers EOF
     (or EBADF-free error) to its pending read without closing the fd —
     the thread still owns the close. *)
  locked t (fun () ->
      List.iter (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ()) t.conns);
  List.iter Thread.join !threads;
  (* Drain the stop pipe so a later serve on the same state starts clean. *)
  let buf = Bytes.create 16 in
  Unix.set_nonblock t.stop_rd;
  (try
     while Unix.read t.stop_rd buf 0 16 > 0 do
       ()
     done
   with _ -> ());
  Unix.clear_nonblock t.stop_rd;
  t.stop_requested <- false

let close t =
  if not t.closed then begin
    t.closed <- true;
    (try Unix.close t.stop_rd with _ -> ());
    try Unix.close t.stop_wr with _ -> ()
  end
