(** Shared accept loop for vrpd and the fleet front door (see the
    interface). *)

(* One accepted connection. [read_started] is the wall-clock instant its
   thread entered a blocking frame read (0. while handling a request), the
   signal the idle sweeper keys off: a connection stalled mid-frame — or
   idle between frames — longer than the admission idle timeout is shut
   down so a slow-loris peer cannot pin a handler thread. *)
type conn = {
  fd : Unix.file_descr;
  mutable read_started : float;
}

type t = {
  state_lock : Mutex.t;  (* connection registry *)
  mutable stop_requested : bool;
  stop_rd : Unix.file_descr;
  stop_wr : Unix.file_descr;
  mutable conns : conn list;
  mutable closed : bool;
}

let create () =
  let stop_rd, stop_wr = Unix.pipe () in
  {
    state_lock = Mutex.create ();
    stop_requested = false;
    stop_rd;
    stop_wr;
    conns = [];
    closed = false;
  }

let locked t f =
  Mutex.lock t.state_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.state_lock) f

let request_stop t = t.stop_requested <- true

let stop t =
  t.stop_requested <- true;
  (* Wake the accept loop; EAGAIN on a full pipe is as good as a byte. *)
  try ignore (Unix.write t.stop_wr (Bytes.of_string "x") 0 1) with _ -> ()

let stopping t = t.stop_requested

let register_conn t fd =
  let c = { fd; read_started = 0. } in
  locked t (fun () -> t.conns <- c :: t.conns);
  c

let close_conn t c =
  locked t (fun () ->
      if List.memq c t.conns then begin
        t.conns <- List.filter (fun c' -> c' != c) t.conns;
        try Unix.close c.fd with _ -> ()
      end)

let conn_loop t ~handle ~on_bad_request ?admit c =
  let fd = c.fd in
  let answer resp =
    try Protocol.write_frame fd (Protocol.encode_response resp) with _ -> ()
  in
  let read_one () =
    c.read_started <- Unix.gettimeofday ();
    Fun.protect ~finally:(fun () -> c.read_started <- 0.) (fun () ->
        Protocol.read_frame fd)
  in
  let rec loop () =
    match read_one () with
    | None -> ()
    | Some payload ->
      (match Protocol.decode_request payload with
      | Error msg ->
        on_bad_request msg;
        answer (Protocol.error_response ~rid:0 ~kind:"bad-request" msg)
      | Ok req ->
        answer (handle req);
        (* A shutdown request stops the daemon only after its response is
           on the wire, so the requesting client gets its acknowledgment. *)
        if t.stop_requested then stop t);
      if not t.stop_requested then loop ()
    | exception Failure msg ->
      answer (Protocol.error_response ~rid:0 ~kind:"bad-frame" msg)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      (* SO_RCVTIMEO fired: the peer stalled mid-frame past the idle
         budget. Same verdict as a sweeper close, counted the same way. *)
      Option.iter Admit.note_idle_closed admit
    | exception Unix.Unix_error _ -> ()
  in
  loop ();
  close_conn t c;
  Option.iter Admit.conn_closed admit

(* Arm the kernel-side stall guards. SO_RCVTIMEO bounds each blocking read
   (so a frame must keep arriving) and SO_SNDTIMEO each blocking write (so
   a peer that stops draining its response cannot pin the thread); the
   sweeper remains the backstop for byte-at-a-time trickle, which resets
   the kernel timers but not [read_started]. *)
let arm_timeouts fd ~idle_timeout_ms =
  if idle_timeout_ms > 0 then begin
    let secs = float_of_int idle_timeout_ms /. 1000. in
    (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO secs with _ -> ());
    try Unix.setsockopt_float fd Unix.SO_SNDTIMEO secs with _ -> ()
  end

(* Accept-then-shed: over [max_conns] the connection is answered with one
   structured busy frame (rid 0 — no request was read) and closed without
   spawning a thread, so the client learns why instead of hanging. *)
let shed_conn admit fd =
  arm_timeouts fd ~idle_timeout_ms:1000;
  (try
     Protocol.write_frame fd
       (Protocol.encode_response
          (Protocol.busy_response ~rid:0
             ~retry_after_ms:(Admit.retry_after_ms admit)
             (Printf.sprintf "server at connection capacity (%d); retry later"
                (Admit.limits admit).Admit.max_conns)))
   with _ -> ());
  try Unix.close fd with _ -> ()

let sweeper_loop t admit stop_flag () =
  let timeout_ms = (Admit.limits admit).Admit.idle_timeout_ms in
  let timeout = float_of_int timeout_ms /. 1000. in
  while not (Atomic.get stop_flag) do
    let now = Unix.gettimeofday () in
    locked t (fun () ->
        List.iter
          (fun c ->
            if c.read_started > 0. && now -. c.read_started > timeout then begin
              (* Reset the mark so one stall is counted (and shut down)
                 once; the owning thread's read then sees EOF and closes. *)
              c.read_started <- 0.;
              Admit.note_idle_closed admit;
              try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with _ -> ()
            end)
          t.conns);
    Thread.delay (Float.min 0.05 (Float.max 0.005 (timeout /. 4.)))
  done

let serve t ~handle ?(on_bad_request = fun _ -> ()) ?admit listen_fd =
  let threads = ref [] in
  (* Reap finished connection threads on each accept so a long-lived daemon
     holds handles proportional to live connections, not connections ever
     accepted. Joining a finished thread is immediate. *)
  let reap () =
    threads :=
      List.filter
        (fun (th, done_) ->
          if Atomic.get done_ then begin
            Thread.join th;
            false
          end
          else true)
        !threads
  in
  let spawn_conn fd =
    (match admit with
    | Some a -> arm_timeouts fd ~idle_timeout_ms:(Admit.limits a).Admit.idle_timeout_ms
    | None -> ());
    let c = register_conn t fd in
    let done_ = Atomic.make false in
    let th =
      Thread.create
        (fun c ->
          Fun.protect
            ~finally:(fun () -> Atomic.set done_ true)
            (fun () -> conn_loop t ~handle ~on_bad_request ?admit c))
        c
    in
    threads := (th, done_) :: !threads
  in
  let sweeper_stop = Atomic.make false in
  let sweeper =
    match admit with
    | Some a when (Admit.limits a).Admit.idle_timeout_ms > 0 ->
      Some (Thread.create (sweeper_loop t a sweeper_stop) ())
    | _ -> None
  in
  let rec accept_loop () =
    if not t.stop_requested then begin
      match Unix.select [ listen_fd; t.stop_rd ] [] [] (-1.0) with
      | readable, _, _ ->
        if List.memq listen_fd readable && not t.stop_requested then begin
          match Unix.accept listen_fd with
          | fd, _ ->
            reap ();
            (match admit with
            | Some a when not (Admit.try_conn a) -> shed_conn a fd
            | _ -> spawn_conn fd)
          | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) -> ()
        end;
        accept_loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
    end
  in
  accept_loop ();
  Atomic.set sweeper_stop true;
  Option.iter Thread.join sweeper;
  (* Wake any connection thread blocked in read: a shutdown delivers EOF
     (or EBADF-free error) to its pending read without closing the fd —
     the thread still owns the close. *)
  locked t (fun () ->
      List.iter
        (fun c -> try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with _ -> ())
        t.conns);
  List.iter (fun (th, _) -> Thread.join th) !threads;
  (* Drain the stop pipe so a later serve on the same state starts clean. *)
  let buf = Bytes.create 16 in
  Unix.set_nonblock t.stop_rd;
  (try
     while Unix.read t.stop_rd buf 0 16 > 0 do
       ()
     done
   with _ -> ());
  Unix.clear_nonblock t.stop_rd;
  t.stop_requested <- false

let close t =
  if not t.closed then begin
    t.closed <- true;
    (try Unix.close t.stop_rd with _ -> ());
    try Unix.close t.stop_wr with _ -> ()
  end
