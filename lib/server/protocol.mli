(** The vrpd wire protocol: length-prefixed JSON frames over a stream
    socket (Unix-domain by default, TCP with [vrpd --listen]).

    Frame format: a 4-byte big-endian unsigned payload length followed by
    exactly that many payload bytes, which are one JSON document. Frames
    larger than {!max_frame} are rejected before any allocation so a
    corrupt or hostile peer cannot balloon the daemon.

    One connection carries a sequence of request frames, each answered by
    exactly one response frame, in order. Closing the connection between
    frames is the normal way for a client to finish.

    Requests: [{"id": N, "op": "predict", "params": {...}}]. Responses
    echo the id and carry the one-shot CLI's byte-identical stdout in
    [out], its stderr in [err], and the would-be process exit code in
    [code]; [data] is op-specific structured payload (session counters,
    status fields). [ok = false] marks a request the daemon contained —
    decode failure, crash, or cancellation — never a daemon death. *)

type request = {
  id : int;
  op : string;
  params : Json.t;  (** an [Obj]; [Null] when absent *)
}

type response = {
  rid : int;  (** echo of the request id *)
  ok : bool;
  code : int;  (** the one-shot CLI exit code for this operation *)
  out : string;  (** stdout bytes, byte-identical to the one-shot CLI *)
  err : string;  (** stderr bytes (diagnostics, counters; may vary) *)
  data : (string * Json.t) list;  (** op-specific structured payload *)
}

(** Hard cap on a frame payload (64 MiB). *)
val max_frame : int

(** Read one frame. [None] on a clean EOF at a frame boundary.
    @raise Failure on a torn frame, oversized length or mid-frame EOF. *)
val read_frame : Unix.file_descr -> string option

(** @raise Failure when [payload] exceeds {!max_frame}. *)
val write_frame : Unix.file_descr -> string -> unit

val encode_request : request -> string
val decode_request : string -> (request, string) result
val encode_response : response -> string
val decode_response : string -> (response, string) result

(** A contained-failure response: [ok = false], exit-code-2 semantics (the
    same severity a crashed batch file reports), with the diagnostic both
    in [err] (one [vrpd: ...] line) and in [data.diagnostic]. *)
val error_response : rid:int -> kind:string -> string -> response

(** The overload shed response: an {!error_response} of kind ["busy"] whose
    [data.retry_after_ms] tells the client how long to back off before the
    idempotent retry. Sent when a connection is refused over [--max-conns]
    (with [rid = 0], since no request was read) and when a request is shed
    over [--max-inflight]. *)
val busy_response : rid:int -> retry_after_ms:int -> string -> response

(** [Some ms] iff [r] is a shed ([busy]) response carrying a retry hint —
    the signal {!Client.request_retry} honors. *)
val retry_after_ms : response -> int option

(** Parse a TCP address of the form [HOST:PORT], splitting on the {e last}
    colon so IPv6 literals ([::1:9090]) and hosts containing colons keep
    working; a bracketed host ([\[::1\]:9090]) is unwrapped, an empty host
    defaults to [127.0.0.1], and the port must be an integer in
    [0..65535]. Errors name the part that failed, not just the expected
    shape. *)
val parse_hostport : string -> (string * int, string) result
