(** A minimal, dependency-free JSON codec for the vrpd wire protocol.

    The value model is the obvious one; strings are byte strings. The
    printer escapes every byte outside printable ASCII as [\u00XX] and the
    parser folds [\uXXXX] escapes below 256 back to single bytes, so
    arbitrary binary output captured from the analysis round-trips through
    a frame losslessly. Codepoints ≥ 256 are emitted as UTF-8 on parse
    (they never occur in vrpd traffic, which is byte-oriented).

    Numbers: a token with a fraction or exponent parses as [Float], any
    other as [Int]. The printer never emits NaN/infinity (callers must
    sanitize); [Float] values print with [%.17g] so they round-trip. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string

(** Parse one JSON document; trailing non-whitespace bytes are an error. *)
val parse : string -> (t, string) result

(** {2 Accessors} — shallow, total helpers for decoding requests. *)

(** Field of an object ([None] for absent fields and non-objects). *)
val member : string -> t -> t option

val get_string : t -> string option
val get_int : t -> int option
val get_float : t -> float option
val get_bool : t -> bool option
val get_list : t -> t list option

(** [mem_string "k" obj], etc.: [member] composed with the accessor. *)
val mem_string : string -> t -> string option

val mem_int : string -> t -> int option
val mem_bool : string -> t -> bool option
val mem_list : string -> t -> t list option
