(** Fleet mode: a front-door router over N vrpd worker daemons.

    The front door speaks the same wire protocol as a single [vrpd] (same
    {!Accept} loop), but instead of analysing, it routes each request to a
    worker sharded by the request's session / name / source digest and
    proxies the response back untouched — so a client of a fleet sees
    byte-identical responses to a client of one daemon. Workers listen on
    fixed per-slot Unix socket paths ([DIR/worker-N.sock]); a replacement
    worker rebinds the {e same} path, which is what lets the proxy's retry
    ladder ride out a crash without re-routing.

    Containment ladder for a failing worker (extending the supervisor's
    task ladder): the proxy retries the idempotent request against the same
    slot under {!Vrp_sched.Supervisor.supervise} (bounded linear backoff —
    each retry is a recorded failover) → the monitor thread, which pings
    every worker, crash-replaces a dead or wedged one (bounded restart
    budget per slot) → a slot out of restarts is marked degraded and
    excluded from routing → under [strict], a degraded slot stops the
    fleet, and [vrpd --fleet --strict] exits 3.

    Load awareness: each ping's answer carries the worker's
    inflight/capacity/shed, remembered per slot; routing linearly probes
    past {e saturated} slots (no free in-flight slot in the last report)
    the same way it probes past degraded ones, falling back to the sharded
    order when every worker is saturated. A worker that sheds a proxied
    request with a busy response is marked saturated until its next ping
    and the proxy's retry ladder re-routes the replay; an exhausted ladder
    passes the busy response (with its [retry_after_ms]) through to the
    client, which backs off and retries. [fleet-status] shows the
    per-worker inflight/shed and the front door's own admission line.

    Worker processes are abstracted behind a {!spawner} so the tests and
    the bench can run in-process thread workers ({!in_process_spawner})
    while [vrpd --fleet] spawns real [vrpd] child processes. Workers share
    one on-disk summary-cache tier when given the same [cache_dir]
    (guarded by the cache's advisory locks).

    Front-door-local operations: [fleet-status] (fleet counters and
    per-worker state), [ping], [metrics] (Prometheus exposition of the
    front door's registry: admission, proxy ladder, replacement counters,
    per-worker health gauges), [shutdown]. Everything else is proxied.

    Fault injection: [Kill_worker n] force-kills the routed worker on
    every [n]th proxied request just before forwarding — the request must
    survive via retry + replacement; [Slow_worker ms] belongs in the
    {e worker's} settings and wedges it so the ping monitor replaces it. *)

module Diag = Vrp_diag.Diag

(** A live worker as the fleet sees it. [kill] force-kills (idempotent);
    [alive] must turn false only once the worker is fully torn down and
    its socket path is reclaimable — replacement spawns wait on it. *)
type worker = {
  sock : string;
  describe : string;
  kill : unit -> unit;
  alive : unit -> bool;
}

(** [spawner ~wid ~incarnation ~sock] starts worker [wid]'s
    [incarnation]-th body listening on [sock] and returns its handle. *)
type spawner = wid:int -> incarnation:int -> sock:string -> worker

type settings = {
  size : int;  (** worker count (≥ 1) *)
  dir : string;  (** fleet directory holding the per-slot sockets *)
  ping_interval_ms : int;  (** monitor health-check period *)
  ping_timeout_ms : int;  (** ping read timeout before a worker counts as wedged *)
  restarts : int;  (** per-slot replacement budget before degradation *)
  retries : int;  (** proxy replays per request (failover budget) *)
  retry_backoff_ms : int;  (** proxy retry base; attempt [n] sleeps [n·base] *)
  strict : bool;  (** stop the fleet when a slot degrades *)
  fault : Diag.Fault.t option;  (** front-door fault ([Kill_worker]) *)
  limits : Admit.limits;
      (** front-door overload limits: connection bound (accept-then-shed)
          and idle-sweeper timeout for front-door connections. In-flight
          bounds live in the {e workers}; the front door reacts to their
          busy responses by re-routing. *)
}

(** 2 workers, 100ms ping interval, 250ms ping timeout, 3 restarts,
    10 retries at 40ms base (≈2.2s failover budget), not strict,
    {!Admit.default_limits}. *)
val default_settings : dir:string -> settings

type counters = {
  mutable served : int;  (** requests answered (local + proxied) *)
  mutable contained : int;  (** requests answered by the containment wrapper *)
  mutable failovers : int;  (** proxy replays after a dropped/refused attempt *)
  mutable replaced : int;  (** workers crash-replaced by the monitor *)
}

type t

(** Create the fleet directory, spawn the workers, wait until every socket
    accepts, and start the ping monitor.
    @raise Failure if a worker never starts listening. *)
val create : settings:settings -> spawner:spawner -> unit -> t

val settings : t -> settings
val counters : t -> counters

(** The front door's admission state (connection shed / idle-close
    counters, also surfaced by [fleet-status]). *)
val admit : t -> Admit.t

(** Fleet-lifecycle diagnostics ([Server_event] entries). *)
val report : t -> Diag.report

(** The worker socket path a request with these [op]/[params] routes to
    right now. Exposed for the tests (routing determinism). *)
val route_sock : t -> op:string -> params:Json.t -> string

(** True once any slot has exhausted its restart budget. Under [strict]
    this also stops {!serve}; [vrpd --fleet] maps it to exit 3. *)
val degraded : t -> bool

(** Handle one request — route, proxy, contain — independent of any
    socket. The seam the tests and the bench drive in-process. *)
val handle : t -> Protocol.request -> Protocol.response

(** Accept and serve connections until {!stop} (or a [shutdown] request).
    Same contract as {!Server.serve}. *)
val serve : t -> Unix.file_descr -> unit

val stop : t -> unit
val stopping : t -> bool

(** Stop the monitor, kill every worker and wait for teardown, release the
    accept state. Idempotent. *)
val shutdown : t -> unit

(** A spawner running each worker as a {!Server.t} on a thread inside this
    process — the tests' and bench's stand-in for [vrpd] child processes.
    [worker_settings] configures each spawned server (e.g. a shared
    [cache_dir], or a [Slow_worker] fault). *)
val in_process_spawner : ?worker_settings:Server.settings -> unit -> spawner
