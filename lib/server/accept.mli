(** The shared accept loop: framed request connections multiplexed against a
    self-pipe stop signal.

    Both daemons speak the same wire shape — read a {!Protocol} frame,
    decode a request, answer a response — so the single-process server
    ({!Server}) and the fleet front door ({!Fleet}) share this loop and
    differ only in their [handle] function. Connection handling is
    thread-per-connection (blocking I/O on system threads); decode failures
    and torn frames are answered with {!Protocol.error_response} and never
    escape a connection.

    With an {!Admit} state the loop is overload-hardened: a connection over
    [max_conns] is answered with one structured busy frame and closed
    without spawning a thread (accept-then-shed); accepted sockets are
    armed with [SO_RCVTIMEO]/[SO_SNDTIMEO] at the idle timeout; and a
    sweeper thread shuts down any connection stalled mid-frame (or idle
    between frames) past the idle timeout, so a slow-loris peer loses its
    thread instead of pinning it. Finished connection threads are reaped on
    every accept — a long-lived daemon holds handles proportional to live
    connections, not connections ever accepted. *)

type t

(** A fresh loop state (stop pipe + connection registry). *)
val create : unit -> t

(** Accept connections on [listen_fd] until {!stop} (or {!request_stop}
    observed after a response), spawning one handler thread per connection;
    on exit, wakes every in-flight connection and joins its thread, then
    rearms so a later [serve] on the same [t] starts clean. Does not close
    [listen_fd]. [handle] answers one decoded request; [on_bad_request] is
    told about each contained decode failure; [admit] bounds connections
    and drives the idle sweeper (absent, the loop is unbounded as before). *)
val serve :
  t ->
  handle:(Protocol.request -> Protocol.response) ->
  ?on_bad_request:(string -> unit) ->
  ?admit:Admit.t ->
  Unix.file_descr ->
  unit

(** Ask {!serve} to return, without waking its select: the loop stops right
    after the response currently being written is on the wire. This is how
    a [shutdown] request stops the daemon while still acknowledging. *)
val request_stop : t -> unit

(** Ask {!serve} to return now. Safe from any thread or signal handler;
    idempotent. *)
val stop : t -> unit

(** True once a stop was requested. *)
val stopping : t -> bool

(** Release the stop pipe. Call after the final {!serve}. Idempotent. *)
val close : t -> unit
