(** Reference interpreter and execution profiler.

    Executes the canonical SSA CFG directly (φ-functions are resolved with
    the incoming edge, assertions are checked copies), so the branch
    behaviour it observes is attributed to exactly the same branch
    identities — (function, block) — that the static predictors annotate.
    This replaces the paper's instrumented SPEC binaries: a "profile run"
    is an interpretation with the train input, the "observed behaviour" an
    interpretation with the reference input (§5: "Different inputs were used
    to collect the execution profiles and the actual observed behavior").

    Traps (division by zero, out-of-bounds access, step-budget exhaustion)
    raise {!Trap}; assertions inserted by the SSA pass are dynamically
    verified and raise [Assert_failure] on violation, which would indicate a
    compiler bug. *)

module Ast = Vrp_lang.Ast
module Ir = Vrp_ir.Ir
module Var = Vrp_ir.Var

type value = Vint of int | Vfloat of float

exception Trap of string

let trap fmt = Printf.ksprintf (fun msg -> raise (Trap msg)) fmt

type branch_stats = { mutable taken : int; mutable total : int }

(** Execution profile: per-branch outcome counts plus per-edge traversal
    counts (for execution-weighted evaluation). *)
type profile = {
  branches : (string * int, branch_stats) Hashtbl.t;
  edges : (string * int * int, int) Hashtbl.t;
  mutable steps : int;
}

let fresh_profile () = { branches = Hashtbl.create 64; edges = Hashtbl.create 64; steps = 0 }

let branch_stats profile key = Hashtbl.find_opt profile.branches key

(** Observed probability that the branch was taken, if it executed. *)
let observed_prob profile key =
  match Hashtbl.find_opt profile.branches key with
  | Some { taken; total } when total > 0 -> Some (float_of_int taken /. float_of_int total)
  | Some _ | None -> None

let exec_count profile key =
  match Hashtbl.find_opt profile.branches key with Some { total; _ } -> total | None -> 0

type event =
  | Ev_enter of { fn : string; args : value list }
  | Ev_def of { fn : string; var : Var.t; value : value }
  | Ev_return of { fn : string; value : value }
  | Ev_branch of { fn : string; block : int; taken : bool }
  | Ev_access of {
      fn : string;
      block : int;
      instr : int;
      array : string;
      index : int;
      size : int;
      is_store : bool;
    }

type state = {
  program : Ir.program;
  globals : (string, value array) Hashtbl.t;
  profile : profile;
  max_steps : int;
  print_sink : Buffer.t option;
  observe : (event -> unit) option;
}

let emit st ev = match st.observe with None -> () | Some f -> f ev

let zero_of_ty = function Ast.Tfloat -> Vfloat 0.0 | Ast.Tint | Ast.Tvoid -> Vint 0

let make_array (info : Ir.array_info) = Array.make info.size (zero_of_ty info.elem_ty)

let to_float = function Vint n -> float_of_int n | Vfloat f -> f

let binop_value (op : Ast.binop) (a : value) (b : value) : value =
  match (op, a, b) with
  | Ast.Add, Vint x, Vint y -> Vint (x + y)
  | Ast.Sub, Vint x, Vint y -> Vint (x - y)
  | Ast.Mul, Vint x, Vint y -> Vint (x * y)
  | Ast.Div, Vint x, Vint y -> if y = 0 then trap "division by zero" else Vint (x / y)
  | Ast.Mod, Vint x, Vint y -> if y = 0 then trap "modulo by zero" else Vint (x mod y)
  | Ast.Band, Vint x, Vint y -> Vint (x land y)
  | Ast.Bor, Vint x, Vint y -> Vint (x lor y)
  | Ast.Bxor, Vint x, Vint y -> Vint (x lxor y)
  | Ast.Shl, Vint x, Vint y ->
    if y < 0 || y > 62 then trap "shift amount out of range" else Vint (x lsl y)
  | Ast.Shr, Vint x, Vint y ->
    if y < 0 || y > 62 then trap "shift amount out of range" else Vint (x asr y)
  | Ast.Add, _, _ -> Vfloat (to_float a +. to_float b)
  | Ast.Sub, _, _ -> Vfloat (to_float a -. to_float b)
  | Ast.Mul, _, _ -> Vfloat (to_float a *. to_float b)
  | Ast.Div, _, _ ->
    let d = to_float b in
    if d = 0.0 then trap "float division by zero" else Vfloat (to_float a /. d)
  | (Ast.Mod | Ast.Band | Ast.Bor | Ast.Bxor | Ast.Shl | Ast.Shr), _, _ ->
    trap "integer operator applied to float"

let rel_holds (rel : Ast.relop) (a : value) (b : value) : bool =
  let cmp =
    match (a, b) with
    | Vint x, Vint y -> Int.compare x y
    | _, _ -> Float.compare (to_float a) (to_float b)
  in
  match rel with
  | Ast.Eq -> cmp = 0
  | Ast.Ne -> cmp <> 0
  | Ast.Lt -> cmp < 0
  | Ast.Le -> cmp <= 0
  | Ast.Gt -> cmp > 0
  | Ast.Ge -> cmp >= 0

(* Values are coerced to the static type at every typed write point
   (definition, parameter, store, return), matching C's typed storage: an
   [int] flowing into a [float] variable becomes a float before any further
   arithmetic, so [float f = 3; f / 2] divides 3.0 by 2. *)
let coerce (ty : Ast.ty) (v : value) : value =
  match (ty, v) with Ast.Tfloat, Vint n -> Vfloat (float_of_int n) | _ -> v

let rec call_fn (st : state) (fn : Ir.fn) (args : value list) : value =
  let vals = Array.make fn.nvars (Vint 0) in
  (try
     List.iter2
       (fun (p : Var.t) v -> vals.(p.Var.id) <- coerce p.Var.ty v)
       fn.params args
   with Invalid_argument _ -> trap "arity mismatch calling %s" fn.fname);
  if st.observe <> None then begin
    emit st
      (Ev_enter
         { fn = fn.fname; args = List.map (fun (p : Var.t) -> vals.(p.Var.id)) fn.params });
    List.iter
      (fun (p : Var.t) -> emit st (Ev_def { fn = fn.fname; var = p; value = vals.(p.Var.id) }))
      fn.params
  end;
  let local_arrays = Hashtbl.create 4 in
  List.iter
    (fun (info : Ir.array_info) -> Hashtbl.replace local_arrays info.aname (make_array info))
    fn.local_arrays;
  let find_array name =
    match Hashtbl.find_opt local_arrays name with
    | Some a -> a
    | None -> (
      match Hashtbl.find_opt st.globals name with
      | Some a -> a
      | None -> trap "unknown array %s" name)
  in
  let operand = function
    | Ir.Cint n -> Vint n
    | Ir.Cfloat f -> Vfloat f
    | Ir.Ovar v -> vals.(v.Var.id)
  in
  let array_ref name idx =
    let arr = find_array name in
    match idx with
    | Vint i ->
      if i < 0 || i >= Array.length arr then
        trap "array index %d out of bounds for %s[%d] in %s" i name (Array.length arr)
          fn.fname
      else (arr, i)
    | Vfloat _ -> trap "float array index"
  in
  let step () =
    st.profile.steps <- st.profile.steps + 1;
    if st.profile.steps > st.max_steps then trap "step budget exhausted (%d)" st.max_steps
  in
  (* Report an access to the hook before [array_ref] gets a chance to trap,
     so an observer sees the out-of-bounds index that killed the run. *)
  let observe_access ~site name iv is_store =
    match (st.observe, iv) with
    | Some _, Vint index -> (
      let size =
        match Hashtbl.find_opt local_arrays name with
        | Some a -> Some (Array.length a)
        | None -> Option.map Array.length (Hashtbl.find_opt st.globals name)
      in
      match size with
      | Some size ->
        let block, instr = site in
        emit st
          (Ev_access { fn = fn.fname; block; instr; array = name; index; size; is_store })
      | None -> ())
    | _ -> ()
  in
  let eval_rhs ~pred ~site = function
    | Ir.Op a -> operand a
    | Ir.Binop (op, a, b) -> binop_value op (operand a) (operand b)
    | Ir.Unop (Ir.Neg, a) -> (
      match operand a with Vint n -> Vint (-n) | Vfloat f -> Vfloat (-.f))
    | Ir.Unop (Ir.Bnot, a) -> (
      match operand a with Vint n -> Vint (lnot n) | Vfloat _ -> trap "'~' on float")
    | Ir.Cmp (rel, a, b) -> Vint (if rel_holds rel (operand a) (operand b) then 1 else 0)
    | Ir.Load (name, idx) ->
      let iv = operand idx in
      observe_access ~site name iv false;
      let arr, i = array_ref name iv in
      arr.(i)
    | Ir.Call (name, args) -> do_call st fn.fname name (List.map operand args)
    | Ir.Phi args -> (
      match List.assoc_opt pred args with
      | Some a -> operand a
      | None -> trap "phi in %s missing argument for predecessor B%d" fn.fname pred)
    | Ir.Assertion { parent; arel; abound } ->
      let v = vals.(parent.Var.id) in
      assert (rel_holds arel v (operand abound));
      v
  in
  (* Main execution loop over basic blocks. *)
  let rec exec_block bid ~pred : value =
    let blk = Ir.block fn bid in
    (* φ-functions are conceptually parallel: evaluate all arguments against
       the predecessor state before writing any of them. *)
    let rec run_phis = function
      | Ir.Def (v, Ir.Phi args) :: rest ->
        let rest_writes = run_phis rest in
        (v, eval_rhs ~pred ~site:(bid, -1) (Ir.Phi args)) :: rest_writes
      | _ -> []
    in
    let phi_writes = run_phis blk.instrs in
    List.iter
      (fun ((v : Var.t), value) ->
        step ();
        let value = coerce v.Var.ty value in
        vals.(v.Var.id) <- value;
        if st.observe <> None then emit st (Ev_def { fn = fn.fname; var = v; value }))
      phi_writes;
    let nphis =
      let rec count n = function
        | Ir.Def (_, Ir.Phi _) :: rest -> count (n + 1) rest
        | _ -> n
      in
      count 0 blk.instrs
    in
    List.iteri
      (fun i instr ->
        if i >= nphis then begin
          step ();
          match instr with
          | Ir.Def (v, rhs) ->
            let value = coerce v.Var.ty (eval_rhs ~pred ~site:(bid, i) rhs) in
            vals.(v.Var.id) <- value;
            if st.observe <> None then emit st (Ev_def { fn = fn.fname; var = v; value })
          | Ir.Store (name, idx, v) ->
            let iv = operand idx in
            observe_access ~site:(bid, i) name iv true;
            let arr, slot = array_ref name iv in
            let elem_ty =
              match Ir.find_array st.program fn name with
              | Some info -> info.elem_ty
              | None -> Ast.Tint
            in
            arr.(slot) <- coerce elem_ty (operand v)
        end)
      blk.instrs;
    step ();
    let record_edge dst =
      let key = (fn.fname, bid, dst) in
      Hashtbl.replace st.profile.edges key
        (1 + Option.value ~default:0 (Hashtbl.find_opt st.profile.edges key))
    in
    match blk.term with
    | Ir.Jump dst ->
      record_edge dst;
      exec_block dst ~pred:bid
    | Ir.Br { rel; ba; bb; tdst; fdst } ->
      let taken = rel_holds rel (operand ba) (operand bb) in
      if st.observe <> None then emit st (Ev_branch { fn = fn.fname; block = bid; taken });
      let key = (fn.fname, bid) in
      let stats =
        match Hashtbl.find_opt st.profile.branches key with
        | Some s -> s
        | None ->
          let s = { taken = 0; total = 0 } in
          Hashtbl.replace st.profile.branches key s;
          s
      in
      stats.total <- stats.total + 1;
      if taken then stats.taken <- stats.taken + 1;
      let dst = if taken then tdst else fdst in
      record_edge dst;
      exec_block dst ~pred:bid
    | Ir.Ret None -> Vint 0
    | Ir.Ret (Some op) -> coerce fn.ret_ty (operand op)
  in
  let ret = exec_block Ir.entry_bid ~pred:(-1) in
  if st.observe <> None then emit st (Ev_return { fn = fn.fname; value = ret });
  ret

and do_call st caller name args : value =
  match name with
  | "print_int" -> (
    match (args, st.print_sink) with
    | [ Vint n ], Some buf ->
      Buffer.add_string buf (string_of_int n);
      Buffer.add_char buf '\n';
      Vint 0
    | [ Vint _ ], None -> Vint 0
    | _ -> trap "print_int expects one int")
  | "print_float" -> (
    match (args, st.print_sink) with
    | [ v ], Some buf ->
      Buffer.add_string buf (Printf.sprintf "%g" (to_float v));
      Buffer.add_char buf '\n';
      Vfloat 0.0
    | [ _ ], None -> Vfloat 0.0
    | _ -> trap "print_float expects one argument")
  | name -> (
    match Ir.find_fn st.program name with
    | Some fn -> call_fn st fn args
    | None -> trap "call to unknown function %s from %s" name caller)

(** Result of a run: the returned value, the profile, and captured output. *)
type result = { ret : value; profile : profile; output : string }

(** [run program ~args] interprets [program]'s [main] on integer arguments.
    [max_steps] bounds total executed instructions (default 50M). *)
let run ?(max_steps = 50_000_000) ?(capture_output = false) ?observe
    (program : Ir.program) ~(args : int list) : result =
  let main =
    match Ir.find_fn program "main" with
    | Some fn -> fn
    | None -> trap "program has no main function"
  in
  let globals = Hashtbl.create 8 in
  List.iter
    (fun (info : Ir.array_info) -> Hashtbl.replace globals info.aname (make_array info))
    program.global_arrays;
  let st =
    {
      program;
      globals;
      profile = fresh_profile ();
      max_steps;
      print_sink = (if capture_output then Some (Buffer.create 256) else None);
      observe;
    }
  in
  let ret = call_fn st main (List.map (fun n -> Vint n) args) in
  {
    ret;
    profile = st.profile;
    output = (match st.print_sink with Some b -> Buffer.contents b | None -> "");
  }
