(** Reference interpreter and execution profiler: executes the canonical SSA
    CFG directly, so observed branch behaviour attaches to exactly the
    branch identities the static predictors annotate. Stands in for the
    paper's instrumented SPEC binaries. *)

module Ir = Vrp_ir.Ir

type value = Vint of int | Vfloat of float

(** Runtime traps: division by zero, out-of-bounds access, step-budget
    exhaustion, arity mismatches. *)
exception Trap of string

type branch_stats = { mutable taken : int; mutable total : int }

type profile = {
  branches : (string * int, branch_stats) Hashtbl.t;
      (** per conditional branch: (function, block) -> outcome counts *)
  edges : (string * int * int, int) Hashtbl.t;
      (** per CFG edge traversal counts *)
  mutable steps : int;  (** executed instructions *)
}

val fresh_profile : unit -> profile
val branch_stats : profile -> string * int -> branch_stats option

(** Observed P(taken), if the branch executed. *)
val observed_prob : profile -> string * int -> float option

val exec_count : profile -> string * int -> int

type result = { ret : value; profile : profile; output : string }

(** Observation events, streamed to the optional [?observe] hook of {!run}
    as execution proceeds. This is the dynamic half of the soundness
    oracles in [Fuzz.Oracle]: every typed write point, call boundary,
    branch outcome and array access is surfaced, so a checker can compare
    concrete behaviour against static results without re-implementing the
    interpreter. Events are delivered {e before} any trap the observed
    operation may raise (an out-of-bounds access is reported, then
    trapped), and values are reported after coercion to the static type —
    the same value the interpreter stores. *)
type event =
  | Ev_enter of { fn : string; args : value list }
      (** function entry; [args] are the actual parameters after coercion *)
  | Ev_def of { fn : string; var : Vrp_ir.Var.t; value : value }
      (** an SSA definition was written (parameters and φs included) *)
  | Ev_return of { fn : string; value : value }
      (** function exit with its (coerced) return value *)
  | Ev_branch of { fn : string; block : int; taken : bool }
      (** a conditional branch executed *)
  | Ev_access of {
      fn : string;
      block : int;
      instr : int;  (** index of the access in [block]'s instruction list *)
      array : string;
      index : int;
      size : int;
      is_store : bool;
    }  (** an array access is about to execute (possibly out of bounds) *)

(** Interpret [main] on integer arguments. [max_steps] bounds the run
    (default 50M); [capture_output] collects [print_*] output; [observe]
    receives {!event}s as they happen (default: none, zero overhead).
    @raise Trap on runtime errors. *)
val run :
  ?max_steps:int ->
  ?capture_output:bool ->
  ?observe:(event -> unit) ->
  Ir.program ->
  args:int list ->
  result
