(** Static per-branch feature vectors for the learned fallback predictor:
    the Ball–Larus signal set (comparison kind, operand classes, loop
    position, guard shape, successor postdominance, call/store/return
    content, array context) plus VRP-derived hints ("range known on one
    side"). All features are small non-negative integers. *)

module Ir = Vrp_ir.Ir
module Heuristics = Vrp_predict.Heuristics
module Engine = Vrp_core.Engine

(** Schema version, serialized into every model; bumped on any change to
    {!names} or the encoding. A model refuses to load against a different
    schema. *)
val version : int

(** Feature names, in vector order. *)
val names : string array

val dim : int

(** The feature vector (length {!dim}) of the branch terminating block
    [src]. [res] is the function's engine result when one exists — it feeds
    only the range-known hint features; pass [None] for a purely static
    vector (demoted or unreachable functions). *)
val extract :
  ctx:Heuristics.ctx -> res:Engine.t option -> src:int -> Ir.branch -> int array
