(** Labeled training corpora for the learned fallback predictor (see the
    interface). A corpus is fully determined by (seed, profile, count): the
    generator coordinates are {!Vrp_fuzz.Runner.mix_seed}'s — the same
    contract the fuzzing campaigns use — and program results are merged in
    index order whatever the pool's scheduling, so the content digest is
    reproducible at any [jobs]. *)

module Ir = Vrp_ir.Ir
module Engine = Vrp_core.Engine
module Pipeline = Vrp_core.Pipeline
module Interproc = Vrp_core.Interproc
module Heuristics = Vrp_predict.Heuristics
module Interp = Vrp_profile.Interp
module Prng = Vrp_util.Prng
module Gen = Vrp_fuzz.Gen
module Runner = Vrp_fuzz.Runner
module Pool = Vrp_sched.Pool
module Pretty = Vrp_lang.Pretty

type sample = {
  fv : int array;
  taken : int;
  total : int;
  bl_pm : int;
}

type t = {
  seed : int;
  profile : string;
  count : int;
  programs : int;
  samples : sample array;
  digest : string;
}

(* Ground-truth branch counts, merged over every argument vector that ran
   to completion (a trapped run contributes nothing — same benign-trap
   stance as the fuzzing oracles). *)
let observed_counts (ssa : Ir.program) =
  let counts : (string * int, int * int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun args ->
      match Interp.run ssa ~args with
      | { Interp.profile; _ } ->
        Hashtbl.iter
          (fun key (st : Interp.branch_stats) ->
            let taken, total =
              Option.value ~default:(0, 0) (Hashtbl.find_opt counts key)
            in
            Hashtbl.replace counts key
              (taken + st.Interp.taken, total + st.Interp.total))
          profile.Interp.branches
      | exception Interp.Trap _ -> ())
    Gen.main_args;
  counts

(* Samples of one generated program: every conditional branch the VRP tier
   could NOT predict (⊥ fallback, governor-starved, demoted or unreachable
   function) that executed under the ground-truth runs. *)
let samples_of_program ~seed ~(profile : Gen.profile) index : sample list =
  let rng = Prng.create (Runner.mix_seed seed profile.Gen.pname index) in
  let ast = Gen.program rng ~weights:profile.Gen.weights in
  let source = Pretty.program_to_string ast in
  match Pipeline.compile_result source with
  | Error _ -> []
  | Ok c ->
    let ssa = c.Pipeline.ssa in
    let _, ipa = Pipeline.vrp_predictions ssa in
    let counts = observed_counts ssa in
    let out = ref [] in
    List.iter
      (fun (fn : Ir.fn) ->
        let res =
          match ipa with
          | Some ipa -> Interproc.result ipa fn.Ir.fname
          | None -> None
        in
        let ctx = lazy (Heuristics.make_ctx fn) in
        Array.iter
          (fun (b : Ir.block) ->
            match b.Ir.term with
            | Ir.Br br ->
              let fallback =
                match res with
                | None -> true
                | Some res -> (
                  match Engine.branch_prob res b.Ir.bid with
                  | None -> true
                  | Some _ -> Engine.used_fallback res b.Ir.bid)
              in
              if fallback then begin
                match Hashtbl.find_opt counts (fn.Ir.fname, b.Ir.bid) with
                | Some (taken, total) when total > 0 ->
                  let ctx = Lazy.force ctx in
                  let fv = Features.extract ~ctx ~res ~src:b.Ir.bid br in
                  let bl = Heuristics.ball_larus ctx ~src:b.Ir.bid br in
                  let bl_pm =
                    max 0 (min 1000 (int_of_float (Float.round (bl *. 1000.0))))
                  in
                  out := { fv; taken; total; bl_pm } :: !out
                | _ -> ()
              end
            | Ir.Jump _ | Ir.Ret _ -> ())
          fn.Ir.blocks)
      ssa.Ir.fns;
    List.rev !out

let digest_of ~seed ~profile ~count (samples : sample array) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "vrpcorpus %d seed %d profile %s count %d\n" Features.version
       seed profile count);
  Array.iter
    (fun s ->
      Array.iter (fun f -> Buffer.add_string buf (Printf.sprintf "%d," f)) s.fv;
      Buffer.add_string buf (Printf.sprintf " %d %d %d\n" s.taken s.total s.bl_pm))
    samples;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let default_profile =
  match Gen.profile_named "features" with
  | Some p -> p
  | None -> List.hd Gen.profiles

let build ?(jobs = 1) ?(profile = default_profile) ~seed ~count () : t =
  let per_program =
    Pool.with_pool ~jobs (fun pool ->
        Pool.map pool
          (fun index -> samples_of_program ~seed ~profile index)
          (Array.init count Fun.id))
  in
  let samples =
    Array.to_list per_program
    |> List.concat_map (function Ok l -> l | Error _ -> [])
    |> Array.of_list
  in
  {
    seed;
    profile = profile.Gen.pname;
    count;
    programs = count;
    samples;
    digest = digest_of ~seed ~profile:profile.Gen.pname ~count samples;
  }
