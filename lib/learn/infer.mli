(** Model loading and the learned fallback tier.

    Loading is total: a missing, corrupt, truncated or schema-mismatched
    [.vrpmodel] file becomes a structured [Model_error] diagnostic, never an
    exception, so consumers can degrade cleanly to Ball–Larus. *)

module Diag = Vrp_diag.Diag

(** Parse model bytes (checksum, format and feature-schema verified).
    [what] names the source in the diagnostic (default ["<string>"]). *)
val of_string : ?what:string -> string -> (Tree.t, Diag.diag) result

(** Read and parse a [.vrpmodel] file. I/O errors are [Model_error]s too. *)
val load : string -> (Tree.t, Diag.diag) result

(** The committed default model, embedded at build time
    ([models/default.vrpmodel] holds the same bytes).
    @raise Failure if the embedded bytes are corrupt — a build error, not a
    runtime condition. *)
val default : Tree.t Lazy.t

(** Predicted taken-probability for one branch VRP left to the fallback
    tier. [res] is the function's engine result when one exists (feeds the
    range-known hints); [src] the branch's source block id. *)
val prob :
  Tree.t ->
  ctx:Vrp_predict.Heuristics.ctx ->
  res:Vrp_core.Engine.t option ->
  src:int ->
  Vrp_ir.Ir.branch ->
  float

(** The learned tier of the ladder VRP → learned → Ball–Larus, in the shape
    {!Vrp_core.Pipeline.vrp_predictions} expects. *)
val fallback : Tree.t -> Vrp_core.Pipeline.fallback_predictor
