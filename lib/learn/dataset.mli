(** Labeled training corpora: fuzzer-generated programs, interpreter
    ground truth, batch-scheduler fan-out.

    Each sample is one conditional branch the VRP tier could not predict
    (⊥ fallback, governor-starved, demoted or unreachable function) in a
    generated program, labeled with its observed taken/total counts over
    the oracle argument vectors ({!Vrp_fuzz.Gen.main_args}). Programs are
    generated at the fuzzing campaigns' coordinates
    ({!Vrp_fuzz.Runner.mix_seed}), analysed with the default engine
    configuration and executed by the reference interpreter; trapped runs
    contribute nothing (benign, as in the oracles).

    A corpus is fully determined by (seed, profile, count): results merge
    in program-index order at any [jobs], and [digest] is an MD5 over the
    canonical sample listing — two corpora with equal digests are
    byte-identical training inputs. *)

type sample = {
  fv : int array;  (** {!Features.extract} vector *)
  taken : int;  (** observed true-edge executions *)
  total : int;  (** observed executions (> 0) *)
  bl_pm : int;  (** Ball–Larus prediction in per-mille, for baselines *)
}

type t = {
  seed : int;
  profile : string;
  count : int;  (** programs requested *)
  programs : int;
  samples : sample array;
  digest : string;  (** content digest: same digest ⇒ same corpus *)
}

(** The corpus generation profile used when none is given: the [features]
    fuzz profile (branch-shape diversity). *)
val default_profile : Vrp_fuzz.Gen.profile

(** Generate and label [count] programs through a [jobs]-wide pool. *)
val build :
  ?jobs:int -> ?profile:Vrp_fuzz.Gen.profile -> seed:int -> count:int -> unit -> t
