(** Static per-branch feature vectors for the learned fallback predictor.

    The schema is the Ball–Larus signal set — comparison kind, operand
    classes, loop position, guard shape, successor postdominance and
    call/store/return content, array context — extended with two
    VRP-derived hints ("range known on one side"), which tell the model
    whether the engine had usable information about each operand even
    though the comparison itself was unpredictable (⊥).

    Every feature is a small non-negative integer so the decision tree can
    use integer thresholds and the corpus digest is platform-independent.
    [version] pins the schema: a model trained against one schema refuses
    to load against another. *)

module Ast = Vrp_lang.Ast
module Ir = Vrp_ir.Ir
module Var = Vrp_ir.Var
module Loops = Vrp_ir.Loops
module Heuristics = Vrp_predict.Heuristics
module Engine = Vrp_core.Engine
module Value = Vrp_ranges.Value

let version = 1

let names =
  [|
    "relop";
    "ba_class";
    "bb_class";
    "loop_depth";
    "src_is_header";
    "t_back_edge";
    "f_back_edge";
    "t_loop_exit";
    "f_loop_exit";
    "t_is_header";
    "f_is_header";
    "t_postdominates";
    "f_postdominates";
    "t_has_call";
    "f_has_call";
    "t_has_store";
    "f_has_store";
    "t_returns";
    "f_returns";
    "t_uses_operand";
    "f_uses_operand";
    "src_has_array_access";
    "cmp_loaded_from_array";
    "ba_range_known";
    "bb_range_known";
  |]

let dim = Array.length names

let relop_code = function
  | Ast.Eq -> 0
  | Ast.Ne -> 1
  | Ast.Lt -> 2
  | Ast.Le -> 3
  | Ast.Gt -> 4
  | Ast.Ge -> 5

(* Operand class: variables and the constant shapes the opcode heuristic
   keys on (zero / positive / negative / float). *)
let operand_class = function
  | Ir.Ovar _ -> 0
  | Ir.Cint 0 -> 1
  | Ir.Cint n when n > 0 -> 2
  | Ir.Cint _ -> 3
  | Ir.Cfloat _ -> 4

let bool_ b = if b then 1 else 0

let block_has_array_access (fn : Ir.fn) bid =
  List.exists
    (fun instr ->
      match instr with
      | Ir.Store _ -> true
      | Ir.Def (_, Ir.Load _) -> true
      | Ir.Def _ -> false)
    (Ir.block fn bid).Ir.instrs

(* Is some compared operand the result of an array load? Walks the defs of
   the whole function once — MiniC functions are small. *)
let compares_loaded_value (fn : Ir.fn) (br : Ir.branch) =
  let wanted =
    List.filter_map Ir.operand_var [ br.Ir.ba; br.Ir.bb ]
    |> List.map (fun (v : Var.t) -> v.Var.id)
  in
  wanted <> []
  && Array.exists
       (fun (b : Ir.block) ->
         List.exists
           (fun instr ->
             match instr with
             | Ir.Def (v, Ir.Load _) -> List.mem v.Var.id wanted
             | Ir.Def _ | Ir.Store _ -> false)
           b.Ir.instrs)
       fn.Ir.blocks

(* A successor "uses" the branch's operands when some non-assertion
   instruction reads one of the compared SSA variables — the Ball–Larus
   guard-heuristic shape. *)
let successor_uses_operand (fn : Ir.fn) (br : Ir.branch) dst =
  let wanted =
    List.filter_map Ir.operand_var [ br.Ir.ba; br.Ir.bb ]
    |> List.map (fun (v : Var.t) -> v.Var.id)
  in
  wanted <> []
  && List.exists
       (fun instr ->
         match instr with
         | Ir.Def (_, Ir.Assertion _) -> false
         | instr ->
           List.exists (fun (v : Var.t) -> List.mem v.Var.id wanted) (Ir.instr_uses instr))
       (Ir.block fn dst).Ir.instrs

(* The engine knew a usable (non-⊤, non-⊥) range for this operand, even
   though the comparison as a whole was unpredictable. *)
let range_known (res : Engine.t option) = function
  | Ir.Cint _ | Ir.Cfloat _ -> true
  | Ir.Ovar v -> (
    match res with
    | None -> false
    | Some res -> (
      match Engine.value res v with
      | Value.Top | Value.Bottom -> false
      | Value.Ranges _ -> true))

let extract ~(ctx : Heuristics.ctx) ~(res : Engine.t option) ~src (br : Ir.branch) :
    int array =
  let fn = ctx.Heuristics.fn and loops = ctx.Heuristics.loops in
  let depth = min 7 (Loops.loop_depth loops src) in
  let back dst = Loops.is_back_edge loops ~src ~dst in
  let exits dst = Loops.is_loop_exit_edge loops ~src ~dst in
  let header dst = Loops.is_loop_header loops dst in
  let pd dst = Heuristics.postdominates ctx dst src in
  let call dst = Heuristics.block_has_call ctx dst in
  let store dst = Heuristics.block_has_store ctx dst in
  let returns dst = Heuristics.block_returns ctx dst in
  let uses dst = successor_uses_operand fn br dst in
  [|
    relop_code br.Ir.rel;
    operand_class br.Ir.ba;
    operand_class br.Ir.bb;
    depth;
    bool_ (header src);
    bool_ (back br.Ir.tdst);
    bool_ (back br.Ir.fdst);
    bool_ (exits br.Ir.tdst);
    bool_ (exits br.Ir.fdst);
    bool_ (header br.Ir.tdst);
    bool_ (header br.Ir.fdst);
    bool_ (pd br.Ir.tdst);
    bool_ (pd br.Ir.fdst);
    bool_ (call br.Ir.tdst);
    bool_ (call br.Ir.fdst);
    bool_ (store br.Ir.tdst);
    bool_ (store br.Ir.fdst);
    bool_ (returns br.Ir.tdst);
    bool_ (returns br.Ir.fdst);
    bool_ (uses br.Ir.tdst);
    bool_ (uses br.Ir.fdst);
    bool_ (block_has_array_access fn src);
    bool_ (compares_loaded_value fn br);
    bool_ (range_known res br.Ir.ba);
    bool_ (range_known res br.Ir.bb);
  |]
