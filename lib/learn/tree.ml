(** CART-style regression tree over integer feature vectors (see the
    interface). Training is deterministic by construction: candidate splits
    are enumerated feature-ascending then threshold-ascending, a candidate
    replaces the incumbent only when strictly better, and float
    accumulations happen in one fixed order. Leaves are stored in
    per-mille so the serialized form is platform-independent. *)

type node =
  | Leaf of int  (** P(true edge) in per-mille, 0..1000 *)
  | Split of { feat : int; thresh : int; lo : node; hi : node }
      (** [feat <= thresh] goes to [lo], else [hi] *)

type t = {
  schema_version : int;
  dim : int;
  depth : int;
  min_leaf : int;
  corpus : string;
  nsamples : int;
  root : node;
}

let rec node_count = function
  | Leaf _ -> 1
  | Split { lo; hi; _ } -> 1 + node_count lo + node_count hi

let rec node_depth = function
  | Leaf _ -> 0
  | Split { lo; hi; _ } -> 1 + max (node_depth lo) (node_depth hi)

let predict t (fv : int array) : float =
  let rec go = function
    | Leaf pm -> float_of_int pm /. 1000.0
    | Split { feat; thresh; lo; hi } -> go (if fv.(feat) <= thresh then lo else hi)
  in
  go t.root

(* --- Training --- *)

let leaf_of_mean mean =
  let pm = int_of_float (Float.round (mean *. 1000.0)) in
  Leaf (max 0 (min 1000 pm))

(* Weighted mean and SSE over the indexed samples; one fixed accumulation
   order. *)
let stats labels weights idx =
  let w = ref 0.0 and wl = ref 0.0 and wll = ref 0.0 in
  List.iter
    (fun i ->
      let l = labels.(i) and wi = weights.(i) in
      w := !w +. wi;
      wl := !wl +. (wi *. l);
      wll := !wll +. (wi *. l *. l))
    idx;
  let mean = if !w > 0.0 then !wl /. !w else 0.5 in
  let sse = !wll -. (!wl *. !wl /. (if !w > 0.0 then !w else 1.0)) in
  (mean, sse)

(* The best split of [idx]: scanned feature-ascending, threshold-ascending;
   strict improvement only, so ties resolve to the lowest (feature,
   threshold) pair. Both sides must keep [min_leaf] samples. *)
let best_split ~dim ~min_leaf fvs labels weights idx =
  let n = List.length idx in
  let best = ref None in
  for feat = 0 to dim - 1 do
    let sorted =
      List.stable_sort
        (fun a b -> compare (fvs.(a).(feat), a) (fvs.(b).(feat), b))
        idx
    in
    let arr = Array.of_list sorted in
    (* prefix sums in sorted order *)
    let pw = Array.make (n + 1) 0.0
    and pwl = Array.make (n + 1) 0.0
    and pwll = Array.make (n + 1) 0.0 in
    Array.iteri
      (fun k i ->
        let l = labels.(i) and wi = weights.(i) in
        pw.(k + 1) <- pw.(k) +. wi;
        pwl.(k + 1) <- pwl.(k) +. (wi *. l);
        pwll.(k + 1) <- pwll.(k) +. (wi *. l *. l))
      arr;
    let sse lo hi =
      (* SSE of samples [lo, hi) in sorted order *)
      let w = pw.(hi) -. pw.(lo)
      and wl = pwl.(hi) -. pwl.(lo)
      and wll = pwll.(hi) -. pwll.(lo) in
      if w > 0.0 then wll -. (wl *. wl /. w) else 0.0
    in
    (* candidate thresholds: feature values where the next sample differs *)
    for k = min_leaf to n - min_leaf do
      if k > 0 && fvs.(arr.(k - 1)).(feat) <> fvs.(arr.(k)).(feat) then begin
        let cost = sse 0 k +. sse k n in
        let better =
          match !best with None -> true | Some (c, _, _, _) -> cost < c
        in
        if better then best := Some (cost, feat, fvs.(arr.(k - 1)).(feat), k)
      end
    done
  done;
  match !best with
  | None -> None
  | Some (cost, feat, thresh, _) ->
    let lo, hi = List.partition (fun i -> fvs.(i).(feat) <= thresh) idx in
    Some (cost, feat, thresh, lo, hi)

let train ?(depth = 6) ?(min_leaf = 10) (ds : Dataset.t) : t =
  let samples = ds.Dataset.samples in
  let n = Array.length samples in
  let fvs = Array.map (fun (s : Dataset.sample) -> s.Dataset.fv) samples in
  let labels =
    Array.map
      (fun (s : Dataset.sample) ->
        float_of_int s.Dataset.taken /. float_of_int (max 1 s.Dataset.total))
      samples
  in
  let weights =
    Array.map (fun (s : Dataset.sample) -> float_of_int s.Dataset.total) samples
  in
  let dim = Features.dim in
  let rec build idx d =
    let mean, sse = stats labels weights idx in
    if d <= 0 || List.length idx < 2 * min_leaf || sse <= 1e-12 then leaf_of_mean mean
    else
      match best_split ~dim ~min_leaf fvs labels weights idx with
      | Some (cost, feat, thresh, lo, hi) when cost < sse ->
        Split { feat; thresh; lo = build lo (d - 1); hi = build hi (d - 1) }
      | _ -> leaf_of_mean mean
  in
  {
    schema_version = Features.version;
    dim;
    depth;
    min_leaf;
    corpus = ds.Dataset.digest;
    nsamples = n;
    root = build (List.init n Fun.id) depth;
  }

(* --- Serialization: the versioned, checksummed .vrpmodel format ---

   Line-oriented ASCII; the final line is the MD5 of every byte before it,
   so [of_string (to_string t)] and [to_string (of_string s)] are both
   byte-stable. *)

let format_version = 1

let body t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "vrpmodel %d\n" format_version);
  Buffer.add_string buf (Printf.sprintf "schema %d %d\n" t.schema_version t.dim);
  Buffer.add_string buf (Printf.sprintf "corpus %s %d\n" t.corpus t.nsamples);
  Buffer.add_string buf (Printf.sprintf "params depth %d min-leaf %d\n" t.depth t.min_leaf);
  Buffer.add_string buf (Printf.sprintf "tree %d\n" (node_count t.root));
  let rec emit = function
    | Leaf pm -> Buffer.add_string buf (Printf.sprintf "L %d\n" pm)
    | Split { feat; thresh; lo; hi } ->
      Buffer.add_string buf (Printf.sprintf "S %d %d\n" feat thresh);
      emit lo;
      emit hi
  in
  emit t.root;
  Buffer.add_string buf "end\n";
  Buffer.contents buf

let to_string t =
  let b = body t in
  b ^ Printf.sprintf "md5 %s\n" (Digest.to_hex (Digest.string b))

let digest t = Digest.to_hex (Digest.string (to_string t))

exception Malformed of string

let of_string (s : string) : (t, string) result =
  let fail fmt = Printf.ksprintf (fun m -> raise (Malformed m)) fmt in
  try
    (* checksum first: the last line must be "md5 <hex>" over all bytes
       before it *)
    let len = String.length s in
    if len = 0 || s.[len - 1] <> '\n' then fail "missing trailing newline";
    let last_start =
      match String.rindex_from_opt s (len - 2) '\n' with
      | Some i -> i + 1
      | None -> fail "truncated: no checksum line"
    in
    let last = String.sub s last_start (len - last_start - 1) in
    (match String.split_on_char ' ' last with
    | [ "md5"; hex ] ->
      let b = String.sub s 0 last_start in
      if not (String.equal hex (Digest.to_hex (Digest.string b))) then
        fail "checksum mismatch (corrupt model)"
    | _ -> fail "truncated: no checksum line");
    let lines = String.split_on_char '\n' (String.sub s 0 last_start) in
    let lines = List.filter (fun l -> l <> "") lines in
    let expect_line name = function
      | l :: rest -> (l, rest)
      | [] -> fail "truncated: missing %s line" name
    in
    let l, rest = expect_line "magic" lines in
    (match String.split_on_char ' ' l with
    | [ "vrpmodel"; v ] when int_of_string_opt v = Some format_version -> ()
    | [ "vrpmodel"; v ] -> fail "unsupported format version %s" v
    | _ -> fail "not a vrpmodel file");
    let l, rest = expect_line "schema" rest in
    let schema_version, dim =
      match String.split_on_char ' ' l with
      | [ "schema"; sv; d ] -> (
        match (int_of_string_opt sv, int_of_string_opt d) with
        | Some sv, Some d -> (sv, d)
        | _ -> fail "malformed schema line")
      | _ -> fail "malformed schema line"
    in
    let l, rest = expect_line "corpus" rest in
    let corpus, nsamples =
      match String.split_on_char ' ' l with
      | [ "corpus"; dg; n ] -> (
        match int_of_string_opt n with
        | Some n -> (dg, n)
        | None -> fail "malformed corpus line")
      | _ -> fail "malformed corpus line"
    in
    let l, rest = expect_line "params" rest in
    let depth, min_leaf =
      match String.split_on_char ' ' l with
      | [ "params"; "depth"; d; "min-leaf"; m ] -> (
        match (int_of_string_opt d, int_of_string_opt m) with
        | Some d, Some m -> (d, m)
        | _ -> fail "malformed params line")
      | _ -> fail "malformed params line"
    in
    let l, rest = expect_line "tree" rest in
    let count =
      match String.split_on_char ' ' l with
      | [ "tree"; n ] -> (
        match int_of_string_opt n with
        | Some n when n > 0 -> n
        | _ -> fail "malformed tree line")
      | _ -> fail "malformed tree line"
    in
    let rest = ref rest in
    let next () =
      match !rest with
      | l :: tl ->
        rest := tl;
        l
      | [] -> fail "truncated tree"
    in
    let rec parse_node () =
      match String.split_on_char ' ' (next ()) with
      | [ "L"; pm ] -> (
        match int_of_string_opt pm with
        | Some pm when pm >= 0 && pm <= 1000 -> Leaf pm
        | _ -> fail "leaf out of range")
      | [ "S"; f; t ] -> (
        match (int_of_string_opt f, int_of_string_opt t) with
        | Some f, Some th when f >= 0 && f < dim ->
          let lo = parse_node () in
          let hi = parse_node () in
          Split { feat = f; thresh = th; lo; hi }
        | Some _, Some _ -> fail "split feature out of schema range"
        | _ -> fail "malformed split node")
      | _ -> fail "malformed tree node"
    in
    let root = parse_node () in
    (match !rest with
    | [ "end" ] -> ()
    | _ -> fail "malformed trailer");
    if node_count root <> count then fail "tree node count mismatch";
    Ok { schema_version; dim; depth; min_leaf; corpus; nsamples; root }
  with Malformed m -> Error m
