(** A CART-style regression decision tree over {!Features} vectors,
    predicting the probability of a branch's true edge.

    Training is fully deterministic: integer-thresholded splits are
    enumerated feature-ascending then threshold-ascending and a candidate
    wins only on a strictly lower weighted SSE, so ties always resolve to
    the lowest (feature, threshold) pair. Leaf probabilities are stored in
    per-mille (0..1000), which keeps the serialized model byte-stable
    across platforms.

    The [.vrpmodel] serialization is a versioned, line-oriented ASCII
    format whose last line is the MD5 of every preceding byte; both
    directions of the round-trip are byte-identical. *)

type node =
  | Leaf of int  (** P(true edge) in per-mille, 0..1000 *)
  | Split of { feat : int; thresh : int; lo : node; hi : node }
      (** [feat <= thresh] goes to [lo], else [hi] *)

type t = {
  schema_version : int;  (** {!Features.version} at training time *)
  dim : int;  (** feature-vector length the tree was fitted to *)
  depth : int;  (** maximum depth the training run allowed *)
  min_leaf : int;  (** minimum samples per leaf *)
  corpus : string;  (** {!Dataset.t} content digest the tree was fitted on *)
  nsamples : int;
  root : node;
}

val node_count : node -> int
val node_depth : node -> int

(** Fit a tree to a labeled corpus (weighted by execution counts). *)
val train : ?depth:int -> ?min_leaf:int -> Dataset.t -> t

(** Predicted probability of the true edge, in [0, 1]. *)
val predict : t -> int array -> float

(** The model-file format version (independent of the feature schema). *)
val format_version : int

val to_string : t -> string

(** Parse and verify a [.vrpmodel]; [Error] describes the first problem
    found (bad magic, version mismatch, checksum mismatch, truncation,
    malformed node). *)
val of_string : string -> (t, string) result

(** MD5 hex digest of the serialized model. *)
val digest : t -> string
