(** Model loading and the learned fallback tier (see the interface). *)

module Ir = Vrp_ir.Ir
module Diag = Vrp_diag.Diag
module Pipeline = Vrp_core.Pipeline
module Heuristics = Vrp_predict.Heuristics

let model_error ~what msg =
  {
    Diag.severity = Diag.Error;
    kind = Diag.Model_error;
    loc = Diag.no_loc;
    message = Printf.sprintf "cannot load model %s: %s" what msg;
  }

let of_string ?(what = "<string>") s : (Tree.t, Diag.diag) result =
  match Tree.of_string s with
  | Error msg -> Error (model_error ~what msg)
  | Ok m ->
    if m.Tree.schema_version <> Features.version || m.Tree.dim <> Features.dim then
      Error
        (model_error ~what
           (Printf.sprintf
              "feature schema mismatch: model has schema %d with %d features, \
               this build wants schema %d with %d"
              m.Tree.schema_version m.Tree.dim Features.version Features.dim))
    else Ok m

let load path : (Tree.t, Diag.diag) result =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> of_string ~what:path s
  | exception Sys_error msg -> Error (model_error ~what:path msg)

(* The committed default model, embedded at build time so every consumer —
   CLI, daemon, evaluation harness — has the learned tier without a file
   path. [models/default.vrpmodel] holds the same bytes; CI's train-smoke
   job re-trains it from the pinned seed and diffs all three. *)
let default =
  lazy
    (match of_string ~what:"<embedded default>" Default_model.data with
    | Ok m -> m
    | Error d -> failwith d.Diag.message)

let prob model ~(ctx : Heuristics.ctx) ~res ~src (br : Ir.branch) : float =
  Tree.predict model (Features.extract ~ctx ~res ~src br)

let fallback model : Pipeline.fallback_predictor =
 fun ~ctx ~res ~src br -> prob model ~ctx ~res ~src br
