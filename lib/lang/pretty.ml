(** Pretty printer for MiniC.

    Emits source that re-parses to a structurally identical program (modulo
    statement line numbers), which the tests rely on as a round-trip check
    and the procedure-cloning pass uses to dump specialised code. *)

open Ast

let prec_of_binop = function
  | Mul | Div | Mod -> 10
  | Add | Sub -> 9
  | Shl | Shr -> 8
  | Band -> 5
  | Bxor -> 4
  | Bor -> 3

let prec_of_expr = function
  | Int _ | Float _ | Var _ | Index _ | Call _ -> 12
  | Unop _ -> 11
  | Binop (op, _, _) -> prec_of_binop op
  | Rel (Lt, _, _) | Rel (Le, _, _) | Rel (Gt, _, _) | Rel (Ge, _, _) -> 7
  | Rel (Eq, _, _) | Rel (Ne, _, _) -> 6
  | And _ -> 2
  | Or _ -> 1

let float_literal f =
  (* Ensure the literal re-lexes as a FLOAT token (digits '.' digits). *)
  let s = Printf.sprintf "%.17g" f in
  if String.contains s '.' || String.contains s 'e' || String.contains s 'n' then
    if String.contains s 'e' || String.contains s 'n' then Printf.sprintf "%f" f else s
  else s ^ ".0"

let rec pp_expr buf e =
  let prec = prec_of_expr e in
  let atom child =
    (* Parenthesise when the child binds no tighter than this node; always
       safe, and keeps the printer simple and unambiguous. *)
    if prec_of_expr child <= prec then begin
      Buffer.add_char buf '(';
      pp_expr buf child;
      Buffer.add_char buf ')'
    end
    else pp_expr buf child
  in
  match e with
  | Int n ->
    (* A parenthesised "(-5)" re-parses as the folded literal Int (-5),
       unlike "(0 - 5)" which re-parses as a subtraction — so printing
       is a fixpoint of parse ∘ pretty. *)
    if n < 0 then Buffer.add_string buf (Printf.sprintf "(%d)" n)
    else Buffer.add_string buf (string_of_int n)
  | Float f ->
    if f < 0.0 then Buffer.add_string buf (Printf.sprintf "(-%s)" (float_literal (-.f)))
    else Buffer.add_string buf (float_literal f)
  | Var name -> Buffer.add_string buf name
  | Index (name, idx) ->
    Buffer.add_string buf name;
    Buffer.add_char buf '[';
    pp_expr buf idx;
    Buffer.add_char buf ']'
  | Binop (op, a, b) ->
    atom a;
    Buffer.add_string buf (Printf.sprintf " %s " (binop_to_string op));
    atom b
  | Rel (op, a, b) ->
    atom a;
    Buffer.add_string buf (Printf.sprintf " %s " (relop_to_string op));
    atom b
  | And (a, b) ->
    atom a;
    Buffer.add_string buf " && ";
    atom b
  | Or (a, b) ->
    atom a;
    Buffer.add_string buf " || ";
    atom b
  | Unop (op, a) ->
    Buffer.add_string buf (unop_to_string op);
    atom a
  | Call (name, args) ->
    Buffer.add_string buf name;
    Buffer.add_char buf '(';
    List.iteri
      (fun i arg ->
        if i > 0 then Buffer.add_string buf ", ";
        pp_expr buf arg)
      args;
    Buffer.add_char buf ')'

let pp_lvalue buf = function
  | Lvar name -> Buffer.add_string buf name
  | Lindex (name, idx) ->
    Buffer.add_string buf name;
    Buffer.add_char buf '[';
    pp_expr buf idx;
    Buffer.add_char buf ']'

let indent buf depth = Buffer.add_string buf (String.make (depth * 2) ' ')

let rec pp_stmt buf depth (s : stmt) =
  indent buf depth;
  (match s.sdesc with
  | Sdecl (ty, name, Iscalar None) ->
    Buffer.add_string buf (Printf.sprintf "%s %s;" (ty_to_string ty) name)
  | Sdecl (ty, name, Iscalar (Some e)) ->
    Buffer.add_string buf (Printf.sprintf "%s %s = " (ty_to_string ty) name);
    pp_expr buf e;
    Buffer.add_char buf ';'
  | Sdecl (ty, name, Iarray size) ->
    Buffer.add_string buf (Printf.sprintf "%s %s[%d];" (ty_to_string ty) name size)
  | Sassign (lv, e) ->
    pp_lvalue buf lv;
    Buffer.add_string buf " = ";
    pp_expr buf e;
    Buffer.add_char buf ';'
  | Sif (cond, then_blk, else_blk) -> (
    Buffer.add_string buf "if (";
    pp_expr buf cond;
    Buffer.add_string buf ") {\n";
    pp_block buf (depth + 1) then_blk;
    indent buf depth;
    Buffer.add_char buf '}';
    match else_blk with
    | None -> ()
    | Some blk ->
      Buffer.add_string buf " else {\n";
      pp_block buf (depth + 1) blk;
      indent buf depth;
      Buffer.add_char buf '}')
  | Swhile (cond, body) ->
    Buffer.add_string buf "while (";
    pp_expr buf cond;
    Buffer.add_string buf ") {\n";
    pp_block buf (depth + 1) body;
    indent buf depth;
    Buffer.add_char buf '}'
  | Sfor (init, cond, step, body) ->
    Buffer.add_string buf "for (";
    (match init with
    | Some { sdesc = Sdecl (ty, name, Iscalar (Some e)); _ } ->
      Buffer.add_string buf (Printf.sprintf "%s %s = " (ty_to_string ty) name);
      pp_expr buf e
    | Some { sdesc = Sassign (lv, e); _ } ->
      pp_lvalue buf lv;
      Buffer.add_string buf " = ";
      pp_expr buf e
    | Some { sdesc = Sexpr e; _ } -> pp_expr buf e
    | Some _ | None -> ());
    Buffer.add_string buf "; ";
    (match cond with Some c -> pp_expr buf c | None -> ());
    Buffer.add_string buf "; ";
    (match step with
    | Some { sdesc = Sassign (lv, e); _ } ->
      pp_lvalue buf lv;
      Buffer.add_string buf " = ";
      pp_expr buf e
    | Some { sdesc = Sexpr e; _ } -> pp_expr buf e
    | Some _ | None -> ());
    Buffer.add_string buf ") {\n";
    pp_block buf (depth + 1) body;
    indent buf depth;
    Buffer.add_char buf '}'
  | Sreturn None -> Buffer.add_string buf "return;"
  | Sreturn (Some e) ->
    Buffer.add_string buf "return ";
    pp_expr buf e;
    Buffer.add_char buf ';'
  | Sbreak -> Buffer.add_string buf "break;"
  | Scontinue -> Buffer.add_string buf "continue;"
  | Sexpr e ->
    pp_expr buf e;
    Buffer.add_char buf ';');
  Buffer.add_char buf '\n'

and pp_block buf depth blk = List.iter (pp_stmt buf depth) blk

let pp_func buf (f : func) =
  Buffer.add_string buf (Printf.sprintf "%s %s(" (ty_to_string f.fty) f.fname);
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf (Printf.sprintf "%s %s" (ty_to_string p.pty) p.pname))
    f.params;
  Buffer.add_string buf ") {\n";
  pp_block buf 1 f.body;
  Buffer.add_string buf "}\n"

let program_to_string (p : program) : string =
  let buf = Buffer.create 1024 in
  List.iter
    (fun g ->
      match g.gsize with
      | None -> Buffer.add_string buf (Printf.sprintf "%s %s;\n" (ty_to_string g.gty) g.gname)
      | Some size ->
        Buffer.add_string buf (Printf.sprintf "%s %s[%d];\n" (ty_to_string g.gty) g.gname size))
    p.globals;
  if p.globals <> [] then Buffer.add_char buf '\n';
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char buf '\n';
      pp_func buf f)
    p.funcs;
  Buffer.contents buf

let expr_to_string e =
  let buf = Buffer.create 64 in
  pp_expr buf e;
  Buffer.contents buf
