(** Small string helpers the stdlib lacks (see the interface). *)

let is_infix ~affix s =
  let la = String.length affix and ls = String.length s in
  if la = 0 then true
  else if la > ls then false
  else
    let rec scan i =
      if i > ls - la then false
      else if String.sub s i la = affix then true
      else scan (i + 1)
    in
    scan 0
