(** Small string helpers the stdlib lacks. *)

(** [is_infix ~affix s] is true iff [affix] occurs as a substring of [s].
    The empty affix is an infix of everything. *)
val is_infix : affix:string -> string -> bool
