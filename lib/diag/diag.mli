(** Structured diagnostics for the analysis stack (resilience layer): a
    per-run collector of machine-readable degradation events threaded
    through the engine, the interprocedural driver and the pipeline, plus
    deterministic fault injection for the tests and the CLI. The prediction
    map stays total; the report says what degraded and why. *)

type severity = Info | Warning | Error

(** [Warning]-or-worse kinds mark degradation: the run completed but some
    result is less precise than the analysis could ideally deliver. *)
type kind =
  | Budget_exhausted  (** the engine's fuel ran out before the fixed point *)
  | Timeout  (** the wall-clock governor tripped *)
  | Widened  (** a value was forcibly widened to ⊥ (quota or growth cap) *)
  | Analysis_crashed  (** a per-function analysis raised; function demoted *)
  | Fallback_heuristic  (** a branch was predicted by Ball–Larus, not VRP *)
  | Front_end_error  (** parse / type / IR-check failure *)
  | Fault_injected  (** a deterministic test fault fired *)
  | Cache_event  (** summary-cache traffic: hits / misses / invalidations *)
  | Deadline_exceeded  (** a supervised task overran its wall-clock deadline *)
  | Task_retry  (** a supervised task failed and was retried *)
  | Journal_event  (** batch journal traffic: checkpoints, resumes *)
  | Server_event  (** vrpd request lifecycle: served, contained, cancelled *)
  | Model_error  (** a learned-predictor model failed to load or verify *)
  | Note  (** free-form informational event *)

type location = { fn : string option; block : int option }

val no_loc : location

type diag = {
  severity : severity;
  kind : kind;
  loc : location;
  message : string;
}

(** A per-run collector; diagnostics are kept in emission order. *)
type report

val create : unit -> report
val add : report -> ?fn:string -> ?block:int -> severity -> kind -> string -> unit
val to_list : report -> diag list

(** [merge ~into from] appends every diagnostic of [from] to [into] in
    [from]'s emission order. Used by the parallel scheduler to combine
    per-task reports deterministically. *)
val merge : into:report -> report -> unit
val count : report -> int
val count_kind : report -> kind -> int

(** True when any diagnostic is [Warning] or worse. Drives [--strict]. *)
val degraded : report -> bool

val severity_to_string : severity -> string
val kind_to_string : kind -> string
val location_to_string : location -> string
val diag_to_string : diag -> string

(** One line per diagnostic plus a summary line. *)
val render : report -> string

(** Cooperative cancellation for supervised tasks: a domain-safe token the
    worker beats and polls while a monitor domain watches the wall clock.
    Workers raise {!Cancel.Cancelled} at their next safe point after the
    monitor cancels them — this is how a hung analysis is broken out of. *)
module Cancel : sig
  type token

  exception Cancelled of string
  (** Raised by a worker that observed its cancellation flag; the argument
      names the task that was cut short. *)

  (** [make ~attempt ()] builds a fresh token; [attempt] is the 0-based
      retry attempt it belongs to (fault injection keys off it). *)
  val make : ?attempt:int -> unit -> token

  (** Publish liveness: one beat per unit of worker progress. *)
  val beat : token -> unit

  val beats : token -> int
  val cancel : token -> unit
  val cancelled : token -> bool
  val attempt : token -> int

  (** Raise {!Cancelled} carrying [name] if the token was cancelled. *)
  val check : token -> name:string -> unit
end

(** Deterministic fault injection: pure configuration, no global state. *)
module Fault : sig
  type t =
    | Crash_fn of string
        (** raise {!Injected} while analysing this function *)
    | Starve_fuel of string
        (** give this function's analysis almost no fuel *)
    | Timeout_fn of string
        (** trip the wall-clock governor immediately in this function *)
    | Trip_after of int
        (** raise {!Injected} after N engine steps in any function *)
    | Hang_fn of string
        (** wedge this function's analysis until a supervisor's deadline
            cancellation breaks it out *)
    | Flaky_fn of string * int
        (** fail the first N attempts at this function, then succeed *)
    | Crash_file of string
        (** crash the batch task of any file whose name contains this
            substring (outside per-function containment) *)
    | Corrupt_cache of int
        (** corrupt every Nth summary written to the cache's disk tier *)
    | Torn_journal of int
        (** tear the journal after N complete records and abort the task *)
    | Skew_range of string
        (** off-by-one the final ranges of this function — a deliberately
            unsound result used to prove the fuzzing oracles catch one *)
    | Kill_worker of int
        (** fleet chaos: the front door force-kills the routed worker on
            every Nth proxied request, just before forwarding *)
    | Slow_worker of int
        (** wedge a worker: every request it handles (pings included)
            sleeps N ms first, so a fleet's health check sees it as hung *)
    | Flood_conns of int
        (** transport chaos, enacted by the client: open N idle raw
            connections around the real request, driving the daemon into
            its connection-capacity shed path *)
    | Stall_frame of int
        (** transport chaos, enacted by the client: stall N ms after a
            partial frame header on a throwaway connection — the idle
            sweeper must disconnect it *)

  exception Injected of string

  val to_string : t -> string

  (** Human-readable list of the accepted spec forms. *)
  val spec_help : string

  (** Parse a CLI spec: [crash:FN], [fuel:FN], [timeout:FN], [steps:N],
      [hang:FN], [flaky:FN:K], [crash-file:NAME], [corrupt-cache:N],
      [torn-journal:N], [skew:FN], [kill-worker:N], [slow-worker:MS],
      [flood-conns:N] or [stall-frame:MS]. *)
  val parse : string -> (t, string) result
end
