(** Structured diagnostics for the analysis stack (resilience layer): a
    per-run collector of machine-readable degradation events threaded
    through the engine, the interprocedural driver and the pipeline, plus
    deterministic fault injection for the tests and the CLI. The prediction
    map stays total; the report says what degraded and why. *)

type severity = Info | Warning | Error

(** [Warning]-or-worse kinds mark degradation: the run completed but some
    result is less precise than the analysis could ideally deliver. *)
type kind =
  | Budget_exhausted  (** the engine's fuel ran out before the fixed point *)
  | Timeout  (** the wall-clock governor tripped *)
  | Widened  (** a value was forcibly widened to ⊥ (quota or growth cap) *)
  | Analysis_crashed  (** a per-function analysis raised; function demoted *)
  | Fallback_heuristic  (** a branch was predicted by Ball–Larus, not VRP *)
  | Front_end_error  (** parse / type / IR-check failure *)
  | Fault_injected  (** a deterministic test fault fired *)
  | Cache_event  (** summary-cache traffic: hits / misses / invalidations *)
  | Note  (** free-form informational event *)

type location = { fn : string option; block : int option }

val no_loc : location

type diag = {
  severity : severity;
  kind : kind;
  loc : location;
  message : string;
}

(** A per-run collector; diagnostics are kept in emission order. *)
type report

val create : unit -> report
val add : report -> ?fn:string -> ?block:int -> severity -> kind -> string -> unit
val to_list : report -> diag list

(** [merge ~into from] appends every diagnostic of [from] to [into] in
    [from]'s emission order. Used by the parallel scheduler to combine
    per-task reports deterministically. *)
val merge : into:report -> report -> unit
val count : report -> int
val count_kind : report -> kind -> int

(** True when any diagnostic is [Warning] or worse. Drives [--strict]. *)
val degraded : report -> bool

val severity_to_string : severity -> string
val kind_to_string : kind -> string
val location_to_string : location -> string
val diag_to_string : diag -> string

(** One line per diagnostic plus a summary line. *)
val render : report -> string

(** Deterministic fault injection: pure configuration, no global state. *)
module Fault : sig
  type t =
    | Crash_fn of string
        (** raise {!Injected} while analysing this function *)
    | Starve_fuel of string
        (** give this function's analysis almost no fuel *)
    | Timeout_fn of string
        (** trip the wall-clock governor immediately in this function *)
    | Trip_after of int
        (** raise {!Injected} after N engine steps in any function *)

  exception Injected of string

  val to_string : t -> string

  (** Parse a CLI spec: [crash:FN], [fuel:FN], [timeout:FN] or [steps:N]. *)
  val parse : string -> (t, string) result
end
