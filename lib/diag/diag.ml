(** Structured diagnostics for the analysis stack (resilience layer).

    The paper's central robustness claim is graceful degradation: any branch
    whose range is ⊥ falls back to the Ball–Larus heuristics. This module
    gives the *infrastructure* the same property at reporting granularity:
    instead of dropping degradation events (silent budget bailouts) or
    crashing the whole run (one diverging function), every layer appends
    machine-readable diagnostics to a {!report} threaded through
    [Engine.analyze], [Interproc.analyze] and [Pipeline.vrp_predictions].
    A run's prediction map is always total; the report is the honest account
    of which parts of it are exact VRP and which are degraded, and why.

    The module is dependency-free so every layer (ranges, engine, pipeline,
    CLI) can use it. *)

type severity = Info | Warning | Error

(** Machine-readable event classification. [Warning]-or-worse kinds mark
    *degradation*: the run completed but some result is less precise than
    the analysis could ideally deliver. *)
type kind =
  | Budget_exhausted  (** the engine's fuel ran out before the fixed point *)
  | Timeout  (** the wall-clock governor tripped *)
  | Widened  (** a value was forcibly widened to ⊥ (quota or growth cap) *)
  | Analysis_crashed  (** a per-function analysis raised; function demoted *)
  | Fallback_heuristic  (** a branch was predicted by Ball–Larus, not VRP *)
  | Front_end_error  (** parse / type / IR-check failure *)
  | Fault_injected  (** a deterministic test fault fired *)
  | Cache_event  (** summary-cache traffic: hits / misses / invalidations *)
  | Deadline_exceeded  (** a supervised task overran its wall-clock deadline *)
  | Task_retry  (** a supervised task failed and was retried *)
  | Journal_event  (** batch journal traffic: checkpoints, resumes *)
  | Server_event  (** vrpd request lifecycle: served, contained, cancelled *)
  | Model_error  (** a learned-predictor model failed to load or verify *)
  | Note  (** free-form informational event *)

type location = { fn : string option; block : int option }

let no_loc = { fn = None; block = None }

type diag = {
  severity : severity;
  kind : kind;
  loc : location;
  message : string;
}

(** A per-run collector. Diagnostics are kept in emission order. *)
type report = { mutable rev_diags : diag list; mutable ndiags : int }

let create () = { rev_diags = []; ndiags = 0 }

let add report ?fn ?block severity kind message =
  report.rev_diags <-
    { severity; kind; loc = { fn; block }; message } :: report.rev_diags;
  report.ndiags <- report.ndiags + 1

let to_list report = List.rev report.rev_diags

(* Append every diagnostic of [from] to [into], preserving [from]'s emission
   order. The parallel scheduler gives each task a private report and merges
   them in deterministic task order, so a parallel run renders byte-identical
   diagnostics to a sequential one. *)
let merge ~into from =
  List.iter
    (fun d -> into.rev_diags <- d :: into.rev_diags)
    (to_list from);
  into.ndiags <- into.ndiags + from.ndiags

let count report = report.ndiags

let count_kind report kind =
  List.length (List.filter (fun d -> d.kind = kind) report.rev_diags)

(** True when any diagnostic is [Warning] or worse — the run produced
    results, but some of them are degraded. Drives [--strict]. *)
let degraded report =
  List.exists (fun d -> d.severity <> Info) report.rev_diags

let severity_to_string = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let kind_to_string = function
  | Budget_exhausted -> "budget-exhausted"
  | Timeout -> "timeout"
  | Widened -> "widened"
  | Analysis_crashed -> "analysis-crashed"
  | Fallback_heuristic -> "fallback-heuristic"
  | Front_end_error -> "front-end-error"
  | Fault_injected -> "fault-injected"
  | Cache_event -> "cache-event"
  | Deadline_exceeded -> "deadline-exceeded"
  | Task_retry -> "task-retry"
  | Journal_event -> "journal-event"
  | Server_event -> "server-event"
  | Model_error -> "model-error"
  | Note -> "note"

let location_to_string loc =
  match (loc.fn, loc.block) with
  | None, _ -> ""
  | Some fn, None -> fn
  | Some fn, Some bid -> Printf.sprintf "%s.B%d" fn bid

let diag_to_string d =
  let loc = location_to_string d.loc in
  Printf.sprintf "%s[%s]%s %s"
    (severity_to_string d.severity)
    (kind_to_string d.kind)
    (if loc = "" then "" else " " ^ loc)
    d.message

(** Multi-line rendering: one line per distinct diagnostic (repeats — e.g.
    the same widening re-reported by every interprocedural round — are
    collapsed to a ×N count) plus a summary line. *)
let render report =
  let buf = Buffer.create 256 in
  let diags = to_list report in
  let counts : (diag, int) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun d ->
      match Hashtbl.find_opt counts d with
      | Some n -> Hashtbl.replace counts d (n + 1)
      | None ->
        Hashtbl.replace counts d 1;
        order := d :: !order)
    diags;
  List.iter
    (fun d ->
      Buffer.add_string buf (diag_to_string d);
      (match Hashtbl.find_opt counts d with
      | Some n when n > 1 -> Buffer.add_string buf (Printf.sprintf " (×%d)" n)
      | _ -> ());
      Buffer.add_char buf '\n')
    (List.rev !order);
  let warnings =
    List.length (List.filter (fun d -> d.severity = Warning) diags)
  in
  let errors = List.length (List.filter (fun d -> d.severity = Error) diags) in
  Buffer.add_string buf
    (Printf.sprintf "%d diagnostic%s (%d warning%s, %d error%s)%s\n"
       report.ndiags
       (if report.ndiags = 1 then "" else "s")
       warnings
       (if warnings = 1 then "" else "s")
       errors
       (if errors = 1 then "" else "s")
       (if degraded report then "; run degraded" else ""));
  Buffer.contents buf

(** Cooperative cancellation for supervised tasks. The token is shared
    domain-safe state: the worker running a task beats the heartbeat and
    polls [cancelled] at its safe points (one atomic load per worklist
    step), while a monitor in another domain watches the wall clock and
    flips the flag when the task's deadline passes. Cancellation is how a
    hung or overrunning analysis is broken out of — OCaml domains cannot be
    killed, so the engine must volunteer. *)
module Cancel = struct
  type token = {
    cancelled : bool Atomic.t;
    heartbeat : int Atomic.t;
        (* liveness counter: lets a monitor tell "hung" (beats stalled)
           from "slow but alive" when it reports a deadline hit *)
    attempt : int;  (* 0-based retry attempt this token belongs to *)
  }

  exception Cancelled of string
  (** Raised by a worker that observed its cancellation flag; the argument
      names the task (function) that was cut short. *)

  let make ?(attempt = 0) () =
    { cancelled = Atomic.make false; heartbeat = Atomic.make 0; attempt }

  let beat token = Atomic.incr token.heartbeat
  let beats token = Atomic.get token.heartbeat
  let cancel token = Atomic.set token.cancelled true
  let cancelled token = Atomic.get token.cancelled
  let attempt token = token.attempt

  (** Raise {!Cancelled} if the token was cancelled; cheap enough for a
      per-worklist-step call. *)
  let check token ~name = if cancelled token then raise (Cancelled name)
end

(** Deterministic fault injection, used by the tests and a hidden CLI flag
    to prove every degradation path actually degrades instead of crashing.
    Faults are pure configuration — no global state, no randomness. *)
module Fault = struct
  type t =
    | Crash_fn of string
        (** raise {!Injected} while analysing this function *)
    | Starve_fuel of string
        (** give this function's analysis almost no fuel *)
    | Timeout_fn of string
        (** trip the wall-clock governor immediately in this function *)
    | Trip_after of int
        (** raise {!Injected} after N engine steps in any function *)
    | Hang_fn of string
        (** wedge this function's analysis: it stops making progress and
            only a supervisor's cancellation (deadline) can break it out *)
    | Flaky_fn of string * int
        (** raise {!Injected} on the first N attempts at this function,
            then succeed — exercises the retry path end to end *)
    | Crash_file of string
        (** raise {!Injected} in the batch task of any file whose name
            contains this substring — a worker crash outside per-function
            containment, demoting the whole file *)
    | Corrupt_cache of int
        (** corrupt every Nth summary written to the cache's disk tier
            (payload bit-flip under an unchanged checksum) *)
    | Torn_journal of int
        (** after N complete journal records, write a torn (truncated)
            record and raise {!Injected} — the batch run dies mid-flight
            exactly as a killed process would *)
    | Skew_range of string
        (** off-by-one the final ranges of this function (shrink every
            numeric upper bound by one stride) — a deliberately {e unsound}
            result used to prove the fuzzing oracles can catch one *)
    | Kill_worker of int
        (** fleet-mode chaos: the front door force-kills the worker routed
            for every Nth proxied request, just before forwarding — the
            request must survive via failover to the replacement *)
    | Slow_worker of int
        (** wedge a worker daemon: every request it handles (including
            health-check pings) sleeps N milliseconds first, so a fleet's
            ping timeout sees it as hung and crash-replaces it *)
    | Flood_conns of int
        (** transport chaos, enacted by the {e client}: open N raw
            connections and leave them idle around the real request,
            driving the daemon into its connection-capacity shed path *)
    | Stall_frame of int
        (** transport chaos, enacted by the {e client}: send a partial
            frame header on a throwaway connection and stall N
            milliseconds — the idle sweeper must disconnect it without
            disturbing the real request *)

  exception Injected of string

  let to_string = function
    | Crash_fn fn -> "crash:" ^ fn
    | Starve_fuel fn -> "fuel:" ^ fn
    | Timeout_fn fn -> "timeout:" ^ fn
    | Trip_after n -> "steps:" ^ string_of_int n
    | Hang_fn fn -> "hang:" ^ fn
    | Flaky_fn (fn, n) -> Printf.sprintf "flaky:%s:%d" fn n
    | Crash_file name -> "crash-file:" ^ name
    | Corrupt_cache n -> "corrupt-cache:" ^ string_of_int n
    | Torn_journal n -> "torn-journal:" ^ string_of_int n
    | Skew_range fn -> "skew:" ^ fn
    | Kill_worker n -> "kill-worker:" ^ string_of_int n
    | Slow_worker ms -> "slow-worker:" ^ string_of_int ms
    | Flood_conns n -> "flood-conns:" ^ string_of_int n
    | Stall_frame ms -> "stall-frame:" ^ string_of_int ms

  let spec_help =
    "crash:FN, fuel:FN, timeout:FN, steps:N, hang:FN, flaky:FN:K, \
     crash-file:NAME, corrupt-cache:N, torn-journal:N, skew:FN, \
     kill-worker:N, slow-worker:MS, flood-conns:N or stall-frame:MS"

  (** Parse a CLI spec (see {!spec_help}). *)
  let parse spec =
    match String.index_opt spec ':' with
    | None ->
      Result.Error
        (Printf.sprintf "bad fault spec %S: want %s" spec spec_help)
    | Some i -> (
      let key = String.sub spec 0 i in
      let arg = String.sub spec (i + 1) (String.length spec - i - 1) in
      let count ~min_ ok =
        match int_of_string_opt arg with
        | Some n when n >= min_ -> Result.Ok (ok n)
        | Some _ | None ->
          Result.Error
            (Printf.sprintf "bad fault spec %S: %s wants a count >= %d" spec key min_)
      in
      match key with
      | _ when arg = "" -> Result.Error (Printf.sprintf "bad fault spec %S: empty argument" spec)
      | "crash" -> Result.Ok (Crash_fn arg)
      | "fuel" -> Result.Ok (Starve_fuel arg)
      | "timeout" -> Result.Ok (Timeout_fn arg)
      | "steps" -> count ~min_:0 (fun n -> Trip_after n)
      | "hang" -> Result.Ok (Hang_fn arg)
      | "skew" -> Result.Ok (Skew_range arg)
      | "flaky" -> (
        match String.rindex_opt arg ':' with
        | None ->
          Result.Error (Printf.sprintf "bad fault spec %S: want flaky:FN:K" spec)
        | Some j -> (
          let fn = String.sub arg 0 j in
          let k = String.sub arg (j + 1) (String.length arg - j - 1) in
          match (fn, int_of_string_opt k) with
          | "", _ | _, None ->
            Result.Error (Printf.sprintf "bad fault spec %S: want flaky:FN:K" spec)
          | fn, Some k when k >= 1 -> Result.Ok (Flaky_fn (fn, k))
          | _ ->
            Result.Error
              (Printf.sprintf "bad fault spec %S: flaky wants K >= 1 failures" spec)))
      | "crash-file" -> Result.Ok (Crash_file arg)
      | "corrupt-cache" -> count ~min_:1 (fun n -> Corrupt_cache n)
      | "torn-journal" -> count ~min_:0 (fun n -> Torn_journal n)
      | "kill-worker" -> count ~min_:1 (fun n -> Kill_worker n)
      | "slow-worker" -> count ~min_:1 (fun ms -> Slow_worker ms)
      | "flood-conns" -> count ~min_:1 (fun n -> Flood_conns n)
      | "stall-frame" -> count ~min_:1 (fun ms -> Stall_frame ms)
      | _ ->
        Result.Error
          (Printf.sprintf "bad fault spec %S: unknown fault %S (want %s)" spec key
             spec_help))
end
