(** Structured diagnostics for the analysis stack (resilience layer).

    The paper's central robustness claim is graceful degradation: any branch
    whose range is ⊥ falls back to the Ball–Larus heuristics. This module
    gives the *infrastructure* the same property at reporting granularity:
    instead of dropping degradation events (silent budget bailouts) or
    crashing the whole run (one diverging function), every layer appends
    machine-readable diagnostics to a {!report} threaded through
    [Engine.analyze], [Interproc.analyze] and [Pipeline.vrp_predictions].
    A run's prediction map is always total; the report is the honest account
    of which parts of it are exact VRP and which are degraded, and why.

    The module is dependency-free so every layer (ranges, engine, pipeline,
    CLI) can use it. *)

type severity = Info | Warning | Error

(** Machine-readable event classification. [Warning]-or-worse kinds mark
    *degradation*: the run completed but some result is less precise than
    the analysis could ideally deliver. *)
type kind =
  | Budget_exhausted  (** the engine's fuel ran out before the fixed point *)
  | Timeout  (** the wall-clock governor tripped *)
  | Widened  (** a value was forcibly widened to ⊥ (quota or growth cap) *)
  | Analysis_crashed  (** a per-function analysis raised; function demoted *)
  | Fallback_heuristic  (** a branch was predicted by Ball–Larus, not VRP *)
  | Front_end_error  (** parse / type / IR-check failure *)
  | Fault_injected  (** a deterministic test fault fired *)
  | Cache_event  (** summary-cache traffic: hits / misses / invalidations *)
  | Note  (** free-form informational event *)

type location = { fn : string option; block : int option }

let no_loc = { fn = None; block = None }

type diag = {
  severity : severity;
  kind : kind;
  loc : location;
  message : string;
}

(** A per-run collector. Diagnostics are kept in emission order. *)
type report = { mutable rev_diags : diag list; mutable ndiags : int }

let create () = { rev_diags = []; ndiags = 0 }

let add report ?fn ?block severity kind message =
  report.rev_diags <-
    { severity; kind; loc = { fn; block }; message } :: report.rev_diags;
  report.ndiags <- report.ndiags + 1

let to_list report = List.rev report.rev_diags

(* Append every diagnostic of [from] to [into], preserving [from]'s emission
   order. The parallel scheduler gives each task a private report and merges
   them in deterministic task order, so a parallel run renders byte-identical
   diagnostics to a sequential one. *)
let merge ~into from =
  List.iter
    (fun d -> into.rev_diags <- d :: into.rev_diags)
    (to_list from);
  into.ndiags <- into.ndiags + from.ndiags

let count report = report.ndiags

let count_kind report kind =
  List.length (List.filter (fun d -> d.kind = kind) report.rev_diags)

(** True when any diagnostic is [Warning] or worse — the run produced
    results, but some of them are degraded. Drives [--strict]. *)
let degraded report =
  List.exists (fun d -> d.severity <> Info) report.rev_diags

let severity_to_string = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let kind_to_string = function
  | Budget_exhausted -> "budget-exhausted"
  | Timeout -> "timeout"
  | Widened -> "widened"
  | Analysis_crashed -> "analysis-crashed"
  | Fallback_heuristic -> "fallback-heuristic"
  | Front_end_error -> "front-end-error"
  | Fault_injected -> "fault-injected"
  | Cache_event -> "cache-event"
  | Note -> "note"

let location_to_string loc =
  match (loc.fn, loc.block) with
  | None, _ -> ""
  | Some fn, None -> fn
  | Some fn, Some bid -> Printf.sprintf "%s.B%d" fn bid

let diag_to_string d =
  let loc = location_to_string d.loc in
  Printf.sprintf "%s[%s]%s %s"
    (severity_to_string d.severity)
    (kind_to_string d.kind)
    (if loc = "" then "" else " " ^ loc)
    d.message

(** Multi-line rendering: one line per distinct diagnostic (repeats — e.g.
    the same widening re-reported by every interprocedural round — are
    collapsed to a ×N count) plus a summary line. *)
let render report =
  let buf = Buffer.create 256 in
  let diags = to_list report in
  let counts : (diag, int) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun d ->
      match Hashtbl.find_opt counts d with
      | Some n -> Hashtbl.replace counts d (n + 1)
      | None ->
        Hashtbl.replace counts d 1;
        order := d :: !order)
    diags;
  List.iter
    (fun d ->
      Buffer.add_string buf (diag_to_string d);
      (match Hashtbl.find_opt counts d with
      | Some n when n > 1 -> Buffer.add_string buf (Printf.sprintf " (×%d)" n)
      | _ -> ());
      Buffer.add_char buf '\n')
    (List.rev !order);
  let warnings =
    List.length (List.filter (fun d -> d.severity = Warning) diags)
  in
  let errors = List.length (List.filter (fun d -> d.severity = Error) diags) in
  Buffer.add_string buf
    (Printf.sprintf "%d diagnostic%s (%d warning%s, %d error%s)%s\n"
       report.ndiags
       (if report.ndiags = 1 then "" else "s")
       warnings
       (if warnings = 1 then "" else "s")
       errors
       (if errors = 1 then "" else "s")
       (if degraded report then "; run degraded" else ""));
  Buffer.contents buf

(** Deterministic fault injection, used by the tests and a hidden CLI flag
    to prove every degradation path actually degrades instead of crashing.
    Faults are pure configuration — no global state, no randomness. *)
module Fault = struct
  type t =
    | Crash_fn of string
        (** raise {!Injected} while analysing this function *)
    | Starve_fuel of string
        (** give this function's analysis almost no fuel *)
    | Timeout_fn of string
        (** trip the wall-clock governor immediately in this function *)
    | Trip_after of int
        (** raise {!Injected} after N engine steps in any function *)

  exception Injected of string

  let to_string = function
    | Crash_fn fn -> "crash:" ^ fn
    | Starve_fuel fn -> "fuel:" ^ fn
    | Timeout_fn fn -> "timeout:" ^ fn
    | Trip_after n -> "steps:" ^ string_of_int n

  (** Parse a CLI spec: [crash:FN], [fuel:FN], [timeout:FN] or [steps:N]. *)
  let parse spec =
    match String.index_opt spec ':' with
    | None ->
      Result.Error
        (Printf.sprintf
           "bad fault spec %S: want crash:FN, fuel:FN, timeout:FN or steps:N"
           spec)
    | Some i -> (
      let key = String.sub spec 0 i in
      let arg = String.sub spec (i + 1) (String.length spec - i - 1) in
      match key with
      | _ when arg = "" -> Result.Error (Printf.sprintf "bad fault spec %S: empty argument" spec)
      | "crash" -> Result.Ok (Crash_fn arg)
      | "fuel" -> Result.Ok (Starve_fuel arg)
      | "timeout" -> Result.Ok (Timeout_fn arg)
      | "steps" -> (
        match int_of_string_opt arg with
        | Some n when n >= 0 -> Result.Ok (Trip_after n)
        | Some _ | None ->
          Result.Error (Printf.sprintf "bad fault spec %S: steps wants a count >= 0" spec))
      | _ ->
        Result.Error
          (Printf.sprintf
             "bad fault spec %S: unknown fault %S (want crash, fuel, timeout or steps)"
             spec key))
end
