(** Algebraic fact environment for symbolic algebra v2.

    Holds relational facts between {!Sop} terms — [s <= t], [s < t],
    [s = t] — learned from branch assertions, SSA def equations, and
    post-fixpoint value ranges. Internally every fact is a single shape:
    a term known to be non-negative ([s <= t] is stored as [t - s >= 0],
    [s < t] as [t - s - 1 >= 0], [s = t] as both directions), which makes
    entailment a linear-combination search (Fourier–Motzkin-style leading-
    monomial elimination, Futhark [SoP/AlgEnv]-flavoured).

    {b Scoping.} A fact learned from an assertion only holds where the
    assertion's definition dominates; each fact carries the block ids it
    depends on, and queries pass an [admit] predicate that filters facts by
    scope (the engine admits a fact iff every scope block dominates the
    query point). Facts with no scopes are unconditional.

    {b Monotonicity.} [add_*] appends, [refine] derives bounded pairwise
    combinations without ever evicting direct facts, and the prover's search
    is capped by depth only — so adding a fact can never un-decide a
    previously decided query (pinned by a qcheck law in [test_ranges.ml]).

    {b Soundness caps.} Facts and goals with any coefficient beyond
    [coeff_cap] are ignored by the prover: all linear combinations then stay
    far from native-int overflow, so a decided answer is exact. *)

type t

val empty : t

val coeff_cap : int
(** Magnitude cap on fact/goal coefficients admitted by the prover. *)

val fact_cap : int
(** Maximum number of direct facts retained (further adds are dropped). *)

val derived_cap : int
(** Maximum number of derived facts [refine] will accumulate. *)

val size : t -> int
(** Number of direct facts. *)

val tame : Sop.t -> bool
(** Inside the prover's window: every coefficient within [coeff_cap] and
    the constant within [Sym.limit]. Untame polynomials are ignored by the
    prover and should not be built into expansions (producers clamp back
    to an opaque atom instead, so coefficient arithmetic can never wrap). *)

val add_le : ?scope:int -> t -> Sop.t -> Sop.t -> t
(** [add_le env s t] records [s <= t]. *)

val add_lt : ?scope:int -> t -> Sop.t -> Sop.t -> t
val add_eq : ?scope:int -> t -> Sop.t -> Sop.t -> t

val add_nonneg : ?scope:int -> t -> Sop.t -> t
(** Record [s >= 0] directly. *)

val refine : t -> t
(** Bounded closure: derive pairwise eliminations of the direct facts and
    append them (never evicting anything), so later queries chain through
    fewer prover steps. Idempotent on already-refined environments. *)

val prove_nonneg : ?admit:(int -> bool) -> t -> Sop.t -> bool
(** [prove_nonneg env s] — is [s >= 0] entailed by the admitted facts?
    [false] means "could not prove", never "disproved". *)

val decide :
  ?admit:(int -> bool) -> t -> Vrp_lang.Ast.relop -> Sop.t -> Sop.t -> bool option
(** [decide env rel a b] — three-valued truth of [a rel b] under the
    admitted facts. *)

val to_string : t -> string
