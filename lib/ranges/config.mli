(** Tunables of the range representation. *)

(** The paper's give-up point: at most this many ranges per value
    ("normally no more than four", §3.4). *)
val default_max_ranges : int

val max_ranges : int ref

(** Probability tolerance for value equality (fixed-point detection). *)
val eps : float

(** Magnitude a widened bound jumps to (see [Value.widen]); growth past it
    goes straight to ⊥. *)
val widen_cap : int

(** Run [f] with a temporary range budget (restored afterwards). *)
val with_max_ranges : int -> (unit -> 'a) -> 'a
