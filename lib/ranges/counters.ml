(** Instrumentation counters for the paper's complexity figures and the
    resilience layer's governors.

    Figure 5 plots the number of {e expression evaluations} (counted by the
    propagation engine) and Figure 6 the number of {e evaluation
    sub-operations} — the primitive operations on pairs of ranges — against
    program size. Every range-pair primitive in this library ticks the
    sub-operation counter.

    Counters used to be a single global [ref], which meant nested or
    interleaved analyses (interprocedural rounds re-entering the engine, an
    evaluation harness wrapping a pipeline run) smeared each other's
    figures. They are now {e scoped frames} returned by value: every
    {!with_counters} call opens a fresh frame, events tick all open frames,
    and the caller gets its own frame's totals back. Nested scopes therefore
    see their own work included in the enclosing scope's totals (as they
    should) while sibling scopes stay fully isolated. *)

type t = {
  mutable evaluations : int;  (** engine expression evaluations (Figure 5) *)
  mutable sub_ops : int;  (** range-pair primitives (Figure 6) *)
  mutable widenings : int;  (** forced widenings to ⊥ (quota / growth cap) *)
  mutable fuel_exhaustions : int;  (** engine runs that ran out of fuel *)
}

let zero () = { evaluations = 0; sub_ops = 0; widenings = 0; fuel_exhaustions = 0 }

let copy c =
  {
    evaluations = c.evaluations;
    sub_ops = c.sub_ops;
    widenings = c.widenings;
    fuel_exhaustions = c.fuel_exhaustions;
  }

(* Process-wide totals live in the metrics registry as per-domain-sharded
   counters: every domain increments its own atomic shard and reads sum the
   shards, so — unlike the plain-mutable root frame these replaced — no
   increment is ever lost when worker domains tick concurrently. The same
   cells back the Prometheus exposition, so there is exactly one
   bookkeeping path. *)
let evaluations_total =
  Vrp_obs.Metrics.counter
    ~help:"Engine expression evaluations (paper Figure 5)"
    "vrp_engine_evaluations_total"

let sub_ops_total =
  Vrp_obs.Metrics.counter
    ~help:"Range-pair primitive sub-operations (paper Figure 6)"
    "vrp_engine_sub_ops_total"

let widenings_total =
  Vrp_obs.Metrics.counter ~help:"Forced widenings to bottom (quota/growth cap)"
    "vrp_engine_widenings_total"

let fuel_exhaustions_total =
  Vrp_obs.Metrics.counter ~help:"Engine runs that ran out of fuel"
    "vrp_engine_fuel_exhaustions_total"

(* Scoped frames are domain-local, innermost first: analyses running on
   scheduler worker domains each tick their own stack, so concurrent
   per-function runs cannot corrupt each other's frames. A frame opened on
   one domain therefore does not observe work done on another — per-run
   totals for parallel batch work are aggregated from the per-function
   [Engine.t] fields instead (and from the registry totals above). *)
let frames : t list Domain.DLS.key = Domain.DLS.new_key (fun () -> [])

let with_counters f =
  let frame = zero () in
  Domain.DLS.set frames (frame :: Domain.DLS.get frames);
  let result =
    Fun.protect ~finally:(fun () -> Domain.DLS.set frames (List.tl (Domain.DLS.get frames))) f
  in
  (result, frame)

let each g = List.iter g (Domain.DLS.get frames)

let tick () =
  Vrp_obs.Metrics.inc sub_ops_total;
  each (fun c -> c.sub_ops <- c.sub_ops + 1)

let record_evaluation () =
  Vrp_obs.Metrics.inc evaluations_total;
  each (fun c -> c.evaluations <- c.evaluations + 1)

let record_widening () =
  Vrp_obs.Metrics.inc widenings_total;
  each (fun c -> c.widenings <- c.widenings + 1)

let record_fuel_exhaustion () =
  Vrp_obs.Metrics.inc fuel_exhaustions_total;
  each (fun c -> c.fuel_exhaustions <- c.fuel_exhaustions + 1)

(* --- Legacy root-frame interface (pre-frame callers) --- *)

let reset () =
  List.iter Vrp_obs.Metrics.reset_counter
    [ evaluations_total; sub_ops_total; widenings_total; fuel_exhaustions_total ]

let read () = Vrp_obs.Metrics.value sub_ops_total
