(** Instrumentation counters for the paper's complexity figures and the
    resilience layer's governors.

    Figure 5 plots the number of {e expression evaluations} (counted by the
    propagation engine) and Figure 6 the number of {e evaluation
    sub-operations} — the primitive operations on pairs of ranges — against
    program size. Every range-pair primitive in this library ticks the
    sub-operation counter.

    Counters used to be a single global [ref], which meant nested or
    interleaved analyses (interprocedural rounds re-entering the engine, an
    evaluation harness wrapping a pipeline run) smeared each other's
    figures. They are now {e scoped frames} returned by value: every
    {!with_counters} call opens a fresh frame, events tick all open frames,
    and the caller gets its own frame's totals back. Nested scopes therefore
    see their own work included in the enclosing scope's totals (as they
    should) while sibling scopes stay fully isolated. *)

type t = {
  mutable evaluations : int;  (** engine expression evaluations (Figure 5) *)
  mutable sub_ops : int;  (** range-pair primitives (Figure 6) *)
  mutable widenings : int;  (** forced widenings to ⊥ (quota / growth cap) *)
  mutable fuel_exhaustions : int;  (** engine runs that ran out of fuel *)
}

let zero () = { evaluations = 0; sub_ops = 0; widenings = 0; fuel_exhaustions = 0 }

let copy c =
  {
    evaluations = c.evaluations;
    sub_ops = c.sub_ops;
    widenings = c.widenings;
    fuel_exhaustions = c.fuel_exhaustions;
  }

(* The root frame is always open so legacy [reset]/[read] keep working; the
   tail of the list is scoped frames, innermost first.

   The frame stack is domain-local: analyses running on scheduler worker
   domains each tick their own stack, so concurrent per-function runs cannot
   corrupt each other's frames. A frame opened on one domain therefore does
   not observe work done on another — per-run totals for parallel batch
   work are aggregated from the per-function [Engine.t] fields instead. The
   shared root frame is still ticked by every domain (monotonic counters
   whose races at worst lose increments, never corrupt structure). *)
let root = zero ()

let frames : t list Domain.DLS.key = Domain.DLS.new_key (fun () -> [])

let with_counters f =
  let frame = zero () in
  Domain.DLS.set frames (frame :: Domain.DLS.get frames);
  let result =
    Fun.protect ~finally:(fun () -> Domain.DLS.set frames (List.tl (Domain.DLS.get frames))) f
  in
  (result, frame)

let each g =
  g root;
  List.iter g (Domain.DLS.get frames)

let tick () = each (fun c -> c.sub_ops <- c.sub_ops + 1)

let record_evaluation () = each (fun c -> c.evaluations <- c.evaluations + 1)

let record_widening () = each (fun c -> c.widenings <- c.widenings + 1)

let record_fuel_exhaustion () =
  each (fun c -> c.fuel_exhaustions <- c.fuel_exhaustions + 1)

(* --- Legacy root-frame interface (pre-frame callers) --- *)

let reset () =
  root.evaluations <- 0;
  root.sub_ops <- 0;
  root.widenings <- 0;
  root.fuel_exhaustions <- 0

let read () = root.sub_ops
