(** Instrumentation counters for the paper's complexity figures and the
    resilience layer's governors.

    Figure 5 plots the number of {e expression evaluations} (counted by the
    propagation engine) and Figure 6 the number of {e evaluation
    sub-operations} — the primitive operations on pairs of ranges — against
    program size. Every range-pair primitive in this library ticks the
    sub-operation counter.

    Counters used to be a single global [ref], which meant nested or
    interleaved analyses (interprocedural rounds re-entering the engine, an
    evaluation harness wrapping a pipeline run) smeared each other's
    figures. They are now {e scoped frames} returned by value: every
    {!with_counters} call opens a fresh frame, events tick all open frames,
    and the caller gets its own frame's totals back. Nested scopes therefore
    see their own work included in the enclosing scope's totals (as they
    should) while sibling scopes stay fully isolated. *)

type t = {
  mutable evaluations : int;  (** engine expression evaluations (Figure 5) *)
  mutable sub_ops : int;  (** range-pair primitives (Figure 6) *)
  mutable widenings : int;  (** forced widenings to ⊥ (quota / growth cap) *)
  mutable fuel_exhaustions : int;  (** engine runs that ran out of fuel *)
}

let zero () = { evaluations = 0; sub_ops = 0; widenings = 0; fuel_exhaustions = 0 }

let copy c =
  {
    evaluations = c.evaluations;
    sub_ops = c.sub_ops;
    widenings = c.widenings;
    fuel_exhaustions = c.fuel_exhaustions;
  }

(* The root frame is always open so legacy [reset]/[read] keep working; the
   tail of the list is scoped frames, innermost first. *)
let root = zero ()

let frames : t list ref = ref []

let with_counters f =
  let frame = zero () in
  frames := frame :: !frames;
  let result =
    Fun.protect ~finally:(fun () -> frames := List.tl !frames) f
  in
  (result, frame)

let each g =
  g root;
  List.iter g !frames

let tick () = each (fun c -> c.sub_ops <- c.sub_ops + 1)

let record_evaluation () = each (fun c -> c.evaluations <- c.evaluations + 1)

let record_widening () = each (fun c -> c.widenings <- c.widenings + 1)

let record_fuel_exhaustion () =
  each (fun c -> c.fuel_exhaustions <- c.fuel_exhaustions + 1)

(* --- Legacy root-frame interface (pre-frame callers) --- *)

let reset () =
  root.evaluations <- 0;
  root.sub_ops <- 0;
  root.widenings <- 0;
  root.fuel_exhaustions <- 0

let read () = root.sub_ops
