(** The value-range lattice and its operation algebra (paper §3.4–§3.5).

    A value is ⊤ (undetermined), ⊥ (statically unpredictable), or a set of
    at most {!Config.max_ranges} weighted ranges whose probabilities sum
    to 1.

    Soundness contract (checked by property tests): if concrete inputs are
    members of the input range sets then the concrete result is a member of
    the result range set — probabilities are the heuristic layer, membership
    is not. When a result is not exactly representable the operation widens
    or returns ⊥; it never drops possible values. *)

module Var = Vrp_ir.Var

type t = Top | Ranges of Srange.t list | Bottom

val top : t
val bottom : t
val const_int : int -> t

(** The pure-copy value [1[v:v:0]] (paper §6: such a value marks a copy). *)
val copy_of_var : Var.t -> t

val of_ranges : Srange.t list -> t
val is_bottom : t -> bool
val is_top : t -> bool

(** Total probability mass (≈1 after normalisation; 0 for ⊤/⊥). *)
val mass : t -> float

(** [Some k] when the value is the probability-1 numeric singleton [k]. *)
val as_constant : t -> int option

(** [Some v] when the value is the pure copy of variable [v]. *)
val as_copy : t -> Var.t option

(** Structural equality with probability tolerance {!Config.eps} — the
    fixed-point test of the propagation engine. *)
val equal : t -> t -> bool

(** Canonicalise a weighted range list: coalesce, rescale mass to 1, compact
    to the range budget (merging cheapest hulls first); ⊥ at the give-up
    point. *)
val normalize : Srange.t list -> t

(** Evaluate a binary operator; ⊥ absorbs, ⊤ is propagated optimistically. *)
val binop : Vrp_lang.Ast.binop -> t -> t -> t

val unop : Vrp_ir.Ir.unop -> t -> t

(** Probability that [a rel b] holds; [None] when the ranges are not
    comparable (caller falls back to heuristics). *)
val cmp_prob : Vrp_lang.Ast.relop -> t -> t -> float option

(** The 0/1 value of a materialised comparison. *)
val cmp_value : Vrp_lang.Ast.relop -> t -> t -> t

(** [assert_narrow a rel b] refines [a] to the sub-ranges satisfying
    [a rel b], scaling probability mass by the kept fraction; returns [a]
    unchanged when no information can be extracted. Sound: uses the loosest
    available bound of [b]. *)
val assert_narrow : t -> Vrp_lang.Ast.relop -> t -> t

(** Weighted φ-merge; weights are normalised internally. ⊥ with non-zero
    weight absorbs; ⊤ contributions are ignored. *)
val union_weighted : (float * t) list -> t

(** [purely_numeric v] is [v] when every bound is numeric, otherwise ⊥ —
    applied at function boundaries, where SSA names must not leak. *)
val purely_numeric : t -> t

(** Resolve symbolic bases against current variable values.
    [only_singleton:true] substitutes exactly-known bases only — required
    before probability queries, because a range derived from a base is
    correlated with it and the independence assumption would mispredict;
    the default full hull is for set-based clients (bounds checks,
    aliasing). *)
val subst : ?only_singleton:bool -> t -> lookup:(Var.t -> t) -> t

(** {2 Lattice operations}

    The plain lattice view of the domain, ordered by member-set inclusion
    (⊤ ⊑ ranges ⊑ ⊥). These are what the property-based tests and the
    fuzzing oracles exercise; the engine's own merges go through
    {!union_weighted}. *)

(** Least upper bound: the equal-weight union of the member sets. *)
val join : t -> t -> t

(** Greatest lower bound, conservatively over-approximated: numeric sets
    intersect exactly (CRT per range pair; provably empty ⇒ ⊤), symbolic
    bounds make the intersection undecidable and return the first argument
    unchanged — a sound superset. Satisfies [meet x (join x y) = x] on
    member sets. *)
val meet : t -> t -> t

(** [widen ~prev ~next] keeps [prev] when [next] adds no members; otherwise
    jumps each growing bound to ±{!Config.widen_cap} (stride 1); growth
    past the cap, or any symbolic bound, is ⊥. Any chain of widenings
    changes value at most three times, guaranteeing termination. *)
val widen : prev:t -> next:t -> t

val to_string : t -> string
