(** Exact primitives on finite arithmetic progressions.

    A progression [(lo, hi, stride)] denotes [{lo, lo+stride, ..., hi}], with
    [stride = 0] iff [lo = hi]. These are the numeric skeletons of the
    paper's ranges; all probability computations reduce to counting over
    them. Everything here is exact integer mathematics except the
    probability of an order comparison between two very large progressions,
    which falls back to a continuous-uniform closed form (error
    O(1/min(n_a, n_b))). *)

type t = { lo : int; hi : int; stride : int }

let valid { lo; hi; stride } =
  if lo = hi then stride = 0
  else lo < hi && stride > 0 && (hi - lo) mod stride = 0

(** Normalising constructor: clamps [hi] down onto the progression. *)
let make lo hi stride =
  if hi < lo then invalid_arg "Progression.make: hi < lo"
  else if lo = hi || stride = 0 then { lo; hi = lo; stride = 0 }
  else begin
    let hi = lo + ((hi - lo) / stride * stride) in
    if lo = hi then { lo; hi = lo; stride = 0 } else { lo; hi; stride }
  end

let singleton n = { lo = n; hi = n; stride = 0 }

let count t = if t.stride = 0 then 1 else ((t.hi - t.lo) / t.stride) + 1

let is_singleton t = t.stride = 0

let mem x t =
  x >= t.lo && x <= t.hi && (t.stride = 0 || (x - t.lo) mod t.stride = 0)

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

(** gcd treating 0 as identity, so strides combine correctly. *)
let gcd_stride a b = if a = 0 then abs b else if b = 0 then abs a else gcd a b

(** Number of elements of [t] strictly below [x]. *)
let count_below t x =
  if x <= t.lo then 0
  else if x > t.hi then count t
  else if t.stride = 0 then if t.lo < x then 1 else 0
  else ((x - 1 - t.lo) / t.stride) + 1

(** Number of elements of [t] ≤ [x]. *)
let count_at_most t x = count_below t (x + 1)

(* Extended gcd: returns (g, x, y) with a*x + b*y = g. *)
let rec egcd a b = if b = 0 then (a, 1, 0) else begin
    let g, x, y = egcd b (a mod b) in
    (g, y, x - (a / b * y))
  end

(** Number of common elements of two progressions (CRT intersection). *)
let count_common a b =
  Counters.tick ();
  if a.hi < b.lo || b.hi < a.lo then 0
  else if is_singleton a then if mem a.lo b then 1 else 0
  else if is_singleton b then if mem b.lo a then 1 else 0
  else begin
    (* Solve lo_a + i*s_a = lo_b + j*s_b over the overlap window. *)
    let g, u, _v = egcd a.stride b.stride in
    let diff = b.lo - a.lo in
    if diff mod g <> 0 then 0
    else begin
      let lcm = a.stride / g * b.stride in
      (* One common point: x = a.lo + a.stride * (u * diff / g), then reduce
         modulo lcm into the overlap window. *)
      let t0 = diff / g * u in
      let step_count = lcm / a.stride in
      (* value = a.lo + a.stride * (t0 mod step_count), normalised positive *)
      let tmod = ((t0 mod step_count) + step_count) mod step_count in
      let x0 = a.lo + (a.stride * tmod) in
      let win_lo = max a.lo b.lo and win_hi = min a.hi b.hi in
      if win_hi < win_lo then 0
      else begin
        (* First common value >= win_lo. *)
        let first =
          if x0 >= win_lo then x0 - ((x0 - win_lo) / lcm * lcm)
          else x0 + ((win_lo - x0 + lcm - 1) / lcm * lcm)
        in
        (* [first] is the smallest value >= win_lo congruent to x0 mod lcm. *)
        let first = if first < win_lo then first + lcm else first in
        if first > win_hi then 0 else ((win_hi - first) / lcm) + 1
      end
    end
  end

(** The intersection progression itself (same CRT walk as {!count_common},
    keeping the witnesses): common elements form a progression with stride
    lcm of the two strides. *)
let inter a b =
  Counters.tick ();
  if a.hi < b.lo || b.hi < a.lo then None
  else if is_singleton a then if mem a.lo b then Some a else None
  else if is_singleton b then if mem b.lo a then Some b else None
  else begin
    let g, u, _v = egcd a.stride b.stride in
    let diff = b.lo - a.lo in
    if diff mod g <> 0 then None
    else begin
      let lcm = a.stride / g * b.stride in
      let t0 = diff / g * u in
      let step_count = lcm / a.stride in
      let tmod = ((t0 mod step_count) + step_count) mod step_count in
      let x0 = a.lo + (a.stride * tmod) in
      let win_lo = max a.lo b.lo and win_hi = min a.hi b.hi in
      if win_hi < win_lo then None
      else begin
        let first =
          if x0 >= win_lo then x0 - ((x0 - win_lo) / lcm * lcm)
          else x0 + ((win_lo - x0 + lcm - 1) / lcm * lcm)
        in
        let first = if first < win_lo then first + lcm else first in
        if first > win_hi then None else Some (make first win_hi lcm)
      end
    end
  end

(** Exact P(u = v) for independent uniform draws u ∈ a, v ∈ b. *)
let prob_eq a b =
  let common = count_common a b in
  float_of_int common /. (float_of_int (count a) *. float_of_int (count b))

(* Continuous approximation of P(U < V), U ~ Uniform[a1,b1], V ~ Uniform[a2,b2].
   P = (1/L2) * integral over v in [a2,b2] of F_U(v), F_U(v) = clamp((v-a1)/L1). *)
let prob_lt_continuous a b =
  let a1 = float_of_int a.lo and b1 = float_of_int a.hi in
  let a2 = float_of_int b.lo and b2 = float_of_int b.hi in
  let l1 = b1 -. a1 and l2 = b2 -. a2 in
  if l2 <= 0.0 then (if a2 >= b1 then 1.0 else if a2 <= a1 then 0.0 else (a2 -. a1) /. l1)
  else begin
    (* Integral of F_U over [a2,b2], split at a1 and b1. *)
    let seg_lo = Float.max a2 a1 and seg_hi = Float.min b2 b1 in
    let linear_part =
      if seg_hi > seg_lo && l1 > 0.0 then
        ((seg_hi -. a1) ** 2.0 -. (seg_lo -. a1) ** 2.0) /. (2.0 *. l1)
      else 0.0
    in
    let ones_part = Float.max 0.0 (b2 -. Float.max a2 b1) in
    let step_part =
      (* degenerate U (l1 = 0): F_U is a step at a1 *)
      if l1 > 0.0 then 0.0 else Float.max 0.0 (Float.min b2 b1 -. Float.max a2 a1)
    in
    Vrp_util.Stats.clamp ~lo:0.0 ~hi:1.0 ((linear_part +. ones_part +. step_part) /. l2)
  end

(** Exactness cap: iterate the smaller progression when it has at most this
    many elements; otherwise use the continuous approximation. *)
let exact_cap = 4096

(** P(u < v) for independent uniform draws. *)
let prob_lt a b =
  Counters.tick ();
  if a.hi < b.lo then 1.0
  else if b.hi <= a.lo then 0.0
  else begin
    let na = count a and nb = count b in
    if min na nb <= exact_cap then begin
      let total = ref 0 in
      if nb <= na then begin
        (* sum over v of |{u in a : u < v}| *)
        let v = ref b.lo in
        for _ = 1 to nb do
          total := !total + count_below a !v;
          v := !v + b.stride
        done
      end
      else begin
        (* sum over u of |{v in b : v > u}| *)
        let u = ref a.lo in
        for _ = 1 to na do
          total := !total + (count b - count_at_most b !u);
          u := !u + a.stride
        done
      end;
      float_of_int !total /. (float_of_int na *. float_of_int nb)
    end
    else prob_lt_continuous a b
  end

(** P(u rel v) for all six comparison operators. *)
let prob_rel (rel : Vrp_lang.Ast.relop) a b =
  let open Vrp_lang.Ast in
  match rel with
  | Eq -> prob_eq a b
  | Ne -> 1.0 -. prob_eq a b
  | Lt -> prob_lt a b
  | Le -> Vrp_util.Stats.clamp ~lo:0.0 ~hi:1.0 (prob_lt a b +. prob_eq a b)
  | Gt -> Vrp_util.Stats.clamp ~lo:0.0 ~hi:1.0 (1.0 -. prob_lt a b -. prob_eq a b)
  | Ge -> 1.0 -. prob_lt a b

let to_string t =
  if t.stride = 0 then Printf.sprintf "[%d]" t.lo
  else Printf.sprintf "[%d:%d:%d]" t.lo t.hi t.stride
