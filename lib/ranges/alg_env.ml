(* Algebraic fact environment: non-negative Sop facts plus a bounded
   linear-combination prover. See alg_env.mli. *)

type fact = {
  poly : Sop.t;  (* known: poly >= 0 *)
  scopes : int list;  (* block ids the fact depends on; [] = unconditional *)
}

type t = {
  direct : fact list;  (* in insertion order *)
  derived : fact list;  (* refine results, insertion order, capped *)
}

let empty = { direct = []; derived = [] }

let coeff_cap = 1 lsl 20
let fact_cap = 128
let derived_cap = 64
let max_depth = 6

let size env = List.length env.direct

(* The prover only touches polynomials whose coefficients are small enough
   that every linear combination it can form stays far from native-int
   overflow: |coeff| <= 2^20 here, scaling factors are coefficient quotients
   (so also <= 2^20), and each of the <= 6 elimination steps at most
   multiplies magnitudes by a cap-bounded factor — comfortably inside 63-bit
   ints given the Sop.too_big re-check at every step. *)
let tame (p : Sop.t) =
  abs (Sop.const_part p) <= Sym.limit
  && List.for_all (fun (_, c) -> abs c <= coeff_cap) (Sop.terms p)

(* Constant polynomials are useless to the prover (no monomial to eliminate
   against), and duplicate facts — common, because the front end inserts
   symmetric assertions on both operands of a guard — only burn [fact_cap].
   Skipping them is still monotone: nothing previously held is removed. *)
let add_fact env f =
  if
    Sop.is_const f.poly
    || List.length env.direct >= fact_cap
    || List.exists
         (fun g -> Sop.equal g.poly f.poly && g.scopes = f.scopes)
         env.direct
  then env
  else { env with direct = env.direct @ [ f ] }

let scoped = function None -> [] | Some b -> [ b ]
let add_nonneg ?scope env s = add_fact env { poly = s; scopes = scoped scope }
let add_le ?scope env s t = add_nonneg ?scope env (Sop.sub t s)
let add_lt ?scope env s t = add_nonneg ?scope env (Sop.sub (Sop.sub t s) Sop.one)

let add_eq ?scope env s t =
  let env = add_le ?scope env s t in
  add_le ?scope env t s

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

let admitted admit f =
  match admit with
  | None -> f.scopes = []
  | Some ok -> List.for_all ok f.scopes

(* Prove goal >= 0 by repeatedly eliminating the leading monomial against an
   admitted fact carrying a same-sign coefficient on that monomial. With
   g = gcd(|c|,|cf|), lam = |cf|/g > 0 and k = |c|/g > 0, the combination
   lam*goal - k*fact cancels the monomial exactly, and
   lam*goal - k*fact >= 0  together with  fact >= 0  entails  goal >= 0.

   [prover] captures the admitted-fact set once and returns a reusable
   goal predicate, so a caller with several goals over the same admission
   (e.g. [decide]) shares two structures that make the backtracking search
   affordable in the engine's hot path:

   - a leading-monomial index, so each elimination step consults only the
     facts that mention the monomial instead of scanning all of them;
   - a failure memo. The search result for a subgoal depends only on its
     remaining depth budget, and failure with a larger budget implies
     failure with any smaller one — so a subgoal that failed at recorded
     depth [d] can be skipped at any depth >= [d] without losing proofs.
     The memo is exact, not a heuristic. *)
let prover ?admit env =
  let facts =
    List.filter (fun f -> admitted admit f && tame f.poly)
      (env.direct @ env.derived)
  in
  let index = Hashtbl.create 64 in
  List.iter
    (fun f -> List.iter (fun (m, _) -> Hashtbl.add index m f) (Sop.terms f.poly))
    facts;
  let failed : (Sop.t, int) Hashtbl.t = Hashtbl.create 64 in
  let rec prove depth goal =
    if Sop.too_big goal || not (tame goal) then false
    else
      match Sop.leading goal with
      | None -> (match Sop.const_value goal with Some c -> c >= 0 | None -> false)
      | Some (m, c) ->
        depth < max_depth
        && (match Hashtbl.find_opt failed goal with
           | Some d when d <= depth -> false
           | _ ->
             let ok =
               List.exists
                 (fun f ->
                   let cf = Sop.coeff_of f.poly m in
                   if cf = 0 || (cf > 0) <> (c > 0) then false
                   else
                     let g = gcd c cf in
                     let lam = abs cf / g and k = abs c / g in
                     prove (depth + 1)
                       (Sop.sub (Sop.scale lam goal) (Sop.scale k f.poly)))
                 (Hashtbl.find_all index m)
             in
             if not ok then Hashtbl.replace failed goal depth;
             ok)
  in
  prove 0

let prove_nonneg ?admit env goal = prover ?admit env goal

(* Bounded pairwise closure. Crucially monotone: direct facts are never
   evicted, existing derived facts are kept, and pair enumeration follows
   insertion order, so adding a direct fact only appends new combinations
   after the previously derived prefix. *)
let refine env =
  let derived = ref (List.rev env.derived) in
  let count = ref (List.length env.derived) in
  (* Hash-set dedup: [Sop.t] normal form makes structural equality semantic
     equality, so polymorphic hashing agrees with [Sop.equal]. *)
  let seen = Hashtbl.create 64 in
  List.iter (fun f -> Hashtbl.replace seen (f.poly, f.scopes) ()) env.direct;
  List.iter (fun f -> Hashtbl.replace seen (f.poly, f.scopes) ()) !derived;
  let add_derived poly scopes =
    if !count < derived_cap && not (Hashtbl.mem seen (poly, scopes)) then begin
      Hashtbl.replace seen (poly, scopes) ();
      derived := { poly; scopes } :: !derived;
      incr count
    end
  in
  let combine f1 f2 =
    if tame f1.poly && tame f2.poly then
      (* For each monomial where the two facts carry opposite-sign
         coefficients, the positive combination lam2*f1 + lam1*f2 >= 0
         eliminates it. *)
      List.iter
        (fun (m, c1) ->
          let c2 = Sop.coeff_of f2.poly m in
          if c2 <> 0 && (c1 > 0) <> (c2 > 0) then begin
            let g = gcd c1 c2 in
            let combined =
              Sop.add
                (Sop.scale (abs c2 / g) f1.poly)
                (Sop.scale (abs c1 / g) f2.poly)
            in
            if (not (Sop.too_big combined)) && not (Sop.is_const combined)
            then
              add_derived combined
                (List.sort_uniq Int.compare (f1.scopes @ f2.scopes))
          end)
        (Sop.terms f1.poly)
  in
  let rec pairs = function
    | [] -> ()
    | f1 :: rest ->
      List.iter (combine f1) rest;
      pairs rest
  in
  pairs env.direct;
  { env with derived = List.rev !derived }

let decide ?admit env (rel : Vrp_lang.Ast.relop) a b =
  let d = Sop.sub b a in
  (* One shared prover: the four direction sub-proofs reuse the fact index
     and the failure memo. *)
  let prove = prover ?admit env in
  let lt () = prove (Sop.sub d Sop.one) (* a < b *)
  and le () = prove d (* a <= b *)
  and gt () = prove (Sop.sub (Sop.neg d) Sop.one) (* a > b *)
  and ge () = prove (Sop.neg d) (* a >= b *) in
  match rel with
  | Vrp_lang.Ast.Lt -> if lt () then Some true else if ge () then Some false else None
  | Vrp_lang.Ast.Le -> if le () then Some true else if gt () then Some false else None
  | Vrp_lang.Ast.Gt -> if gt () then Some true else if le () then Some false else None
  | Vrp_lang.Ast.Ge -> if ge () then Some true else if lt () then Some false else None
  | Vrp_lang.Ast.Eq ->
    if le () && ge () then Some true
    else if lt () || gt () then Some false
    else None
  | Vrp_lang.Ast.Ne ->
    if lt () || gt () then Some true
    else if le () && ge () then Some false
    else None

let to_string env =
  let fact f =
    let s = Printf.sprintf "%s >= 0" (Sop.to_string f.poly) in
    match f.scopes with
    | [] -> s
    | bs -> Printf.sprintf "%s @[%s]" s (String.concat "," (List.map string_of_int bs))
  in
  String.concat "; " (List.map fact (env.direct @ env.derived))
