(* Sum-of-products terms in canonical normal form. See sop.mli. *)

module Var = Vrp_ir.Var

(* A monomial is a sorted list of variables (a variable appears once per
   power, so [x; x; y] is x²y). Monomials are ordered by degree first so
   [leading] prefers the structurally simplest monomial to eliminate. *)
type monomial = Var.t list

let monomial_compare (a : monomial) (b : monomial) =
  let la = List.length a and lb = List.length b in
  if la <> lb then Int.compare la lb else List.compare Var.compare a b

type t = {
  terms : (monomial * int) list;  (* sorted by monomial_compare, coeffs <> 0 *)
  const : int;
}

let max_degree = 3
let max_terms = 12

let zero = { terms = []; const = 0 }
let one = { terms = []; const = 1 }
let const c = { terms = []; const = c }
let of_var v = { terms = [ ([ v ], 1) ]; const = 0 }

let of_sym (s : Sym.t) =
  match s.Sym.base with
  | None -> const s.Sym.off
  | Some v -> { terms = [ ([ v ], 1) ]; const = s.Sym.off }

let to_sym t =
  match t.terms with
  | [] -> Some (Sym.num t.const)
  | [ ([ v ], 1) ] -> Some { Sym.base = Some v; off = t.const }
  | _ -> None

let const_value t = match t.terms with [] -> Some t.const | _ -> None
let const_part t = t.const
let is_const t = t.terms = []

(* Merge two sorted term lists, summing coefficients and dropping zeros. *)
let merge_terms ta tb =
  let rec go a b =
    match (a, b) with
    | [], rest | rest, [] -> rest
    | (ma, ca) :: ra, (mb, cb) :: rb -> (
      match monomial_compare ma mb with
      | 0 ->
        let c = ca + cb in
        if c = 0 then go ra rb else (ma, c) :: go ra rb
      | n when n < 0 -> (ma, ca) :: go ra b
      | _ -> (mb, cb) :: go a rb)
  in
  go ta tb

let add a b = { terms = merge_terms a.terms b.terms; const = a.const + b.const }

let neg a =
  { terms = List.map (fun (m, c) -> (m, -c)) a.terms; const = -a.const }

let sub a b = add a (neg b)

let scale k a =
  if k = 0 then zero
  else { terms = List.map (fun (m, c) -> (m, k * c)) a.terms; const = k * a.const }

let too_big t =
  abs t.const > Sym.limit || List.exists (fun (_, c) -> abs c > Sym.limit) t.terms

(* Overflow-checked coefficient product: a wrapped coefficient would make
   the prover silently unsound, so bail instead. *)
let checked_mul a b =
  if a = 0 || b = 0 then Some 0
  else
    let p = a * b in
    if p / b = a && abs p <= Sym.limit then Some p else None

let mul a b =
  let merge_monomial (ma : monomial) (mb : monomial) =
    List.sort Var.compare (ma @ mb)
  in
  (* A zero coefficient must never enter a term list: [merge_terms] only
     drops zeros produced by summation at equal keys, so an explicit [0*m]
     entry would survive normalisation and break structural equality. *)
  let term1 m c = if c = 0 then zero else { terms = [ (m, c) ]; const = 0 } in
  let exception Overflow in
  try
    let product = ref zero in
    List.iter
      (fun (ma, ca) ->
        List.iter
          (fun (mb, cb) ->
            match checked_mul ca cb with
            | None -> raise Overflow
            | Some c -> product := add !product (term1 (merge_monomial ma mb) c))
          b.terms)
      a.terms;
    let cross cst terms =
      List.fold_left
        (fun acc (m, c) ->
          match checked_mul cst c with
          | None -> raise Overflow
          | Some c' -> add acc (term1 m c'))
        zero terms
    in
    let a0b = cross a.const b.terms in
    let b0a = cross b.const a.terms in
    let c0 =
      match checked_mul a.const b.const with
      | None -> raise Overflow
      | Some c -> c
    in
    let result = add (add !product (add a0b b0a)) (const c0) in
    let degree_ok =
      List.for_all (fun (m, _) -> List.length m <= max_degree) result.terms
    in
    if degree_ok && List.length result.terms <= max_terms && not (too_big result)
    then Some result
    else None
  with Overflow -> None

let cmp a b =
  let d = sub a b in
  match d.terms with [] -> Some (Int.compare d.const 0) | _ -> None

let compare a b =
  let c = List.compare (fun (ma, ca) (mb, cb) ->
      let c = monomial_compare ma mb in
      if c <> 0 then c else Int.compare ca cb)
      a.terms b.terms
  in
  if c <> 0 then c else Int.compare a.const b.const

let equal a b = compare a b = 0

let eval ~env t =
  List.fold_left
    (fun acc (m, c) -> acc + (c * List.fold_left (fun p v -> p * env v) 1 m))
    t.const t.terms

let vars t =
  List.concat_map fst t.terms |> List.sort_uniq Var.compare

let terms t = t.terms
let leading t = match t.terms with [] -> None | (m, c) :: _ -> Some (m, c)

let coeff_of t m =
  match List.find_opt (fun (m', _) -> monomial_compare m m' = 0) t.terms with
  | Some (_, c) -> c
  | None -> 0

let to_string t =
  let mono (m, c) =
    let vs = String.concat "*" (List.map Var.to_string m) in
    if c = 1 then vs else Printf.sprintf "%d*%s" c vs
  in
  match t.terms with
  | [] -> string_of_int t.const
  | ts ->
    let body = String.concat " + " (List.map mono ts) in
    if t.const = 0 then body else Printf.sprintf "%s + %d" body t.const
