(** Symbolic bounds: [SSA variable + constant] (paper §3.4). A bound is a
    plain integer when [base = None]. Arithmetic and comparison are partial:
    [None] means either that the answer needs more than one base variable, or
    that an offset lies beyond the [limit] magnitude cap — [cmp] refuses to
    order same-base bounds once either offset exceeds [limit], because such
    bounds are outside the window where range arithmetic is exact and the
    caller is about to widen them to ⊥ anyway.

    The [le]/[lt]/[ge]/[gt] wrappers additionally consult the ambient
    {!oracle} (installed by the engine when symbolic algebra v2 is enabled)
    before giving up, so relational facts like [i < n] can decide
    comparisons between different base variables. *)

module Var = Vrp_ir.Var

type t = { base : Var.t option; off : int }

val num : int -> t
val of_var : ?off:int -> Var.t -> t
val is_numeric : t -> bool
val equal : t -> t -> bool
val same_base : t -> t -> bool
val add_const : t -> int -> t
val to_string : t -> string

(** Magnitude cap on offsets; beyond it callers widen to ⊥. *)
val limit : int

val too_big : t -> bool

(** Partial arithmetic: [None] = not representable as [var + const]. *)
val add : t -> t -> t option

(** Subtraction; same-base operands cancel to a numeric result. *)
val sub : t -> t -> t option

(** Partial comparison: [None] = undecidable without the base's value, or
    either offset beyond the [limit] cap. *)
val cmp : t -> t -> int option

(** Relation oracle consulted by [le]/[lt]/[ge]/[gt] when [cmp] is [None].
    Installed domain-locally (like [Counters] frames); [with_relation_oracle]
    restores the previous oracle on exit, exceptions included. *)
type oracle = {
  o_le : t -> t -> bool option;  (** decides [a <= b] *)
  o_lt : t -> t -> bool option;  (** decides [a < b] *)
}

val with_relation_oracle : oracle -> (unit -> 'a) -> 'a

val le : t -> t -> bool option
val lt : t -> t -> bool option
val ge : t -> t -> bool option
val gt : t -> t -> bool option
val min_sym : t -> t -> t option
val max_sym : t -> t -> t option
