(** Tunables of the range representation.

    [max_ranges] is the paper's give-up point: "it is necessary to place an
    upper limit on the number of ranges used ... In practice a relatively
    small number of ranges is adequate, normally no more than four" (§3.4).
    The ablation bench sweeps this value; everything else reads it through
    this reference. *)

let default_max_ranges = 4

let max_ranges = ref default_max_ranges

(** Probability tolerance for value equality (fixed-point detection). *)
let eps = 1e-9

(* Where a widened bound jumps: far beyond any generated literal, far below
   [Sym.limit] so a single widened range stays representable. *)
let widen_cap = 1 lsl 20

let with_max_ranges r f =
  let saved = !max_ranges in
  max_ranges := r;
  Fun.protect ~finally:(fun () -> max_ranges := saved) f
