(** The value-range lattice and its operation algebra (paper §3.4–§3.5).

    A lattice value is ⊤ (undetermined), ⊥ (statically unpredictable), or a
    set of at most {!Config.max_ranges} weighted ranges whose probabilities
    sum to 1. The algebra implements:

    - evaluation of every IR operator over range sets (the extension of
      constant propagation's expression evaluation);
    - weighted merging for φ-functions, with compaction back to the range
      budget (the paper's give-up point);
    - probabilistic comparison, from which branch probabilities are read;
    - narrowing by branch assertions;
    - substitution of symbolic bases by their numeric values.

    Soundness contract (checked by property tests): if concrete inputs are
    members of the input range sets then the concrete result is a member of
    the result range set — probabilities are the heuristic layer, membership
    is not. Whenever a result is not exactly representable the operation
    widens (larger bounds, finer stride) or returns ⊥; it never drops
    possible values. *)

module Var = Vrp_ir.Var
module P = Progression

type t = Top | Ranges of Srange.t list | Bottom

let top = Top
let bottom = Bottom

let const_int n = Ranges [ Srange.numeric ~p:1.0 (P.singleton n) ]

(** The pure-copy value: a symbolic singleton [1[v:v:0]] (paper §6: a
    variable whose range is a single symbolic range of another variable is a
    copy of it). *)
let copy_of_var v = Ranges [ Srange.singleton ~p:1.0 (Sym.of_var v) ]

let of_ranges rs = Ranges rs

let is_bottom = function Bottom -> true | Top | Ranges _ -> false
let is_top = function Top -> true | Bottom | Ranges _ -> false

(** Total probability mass (~1 after normalisation). *)
let mass = function
  | Top | Bottom -> 0.0
  | Ranges rs -> List.fold_left (fun acc (r : Srange.t) -> acc +. r.p) 0.0 rs

let as_constant = function
  | Ranges [ r ] when Srange.is_numeric r && Srange.is_singleton r -> Some r.lo.Sym.off
  | Top | Bottom | Ranges _ -> None

let as_copy = function
  | Ranges [ r ] when Srange.is_singleton r && r.lo.Sym.off = 0 -> r.lo.Sym.base
  | Top | Bottom | Ranges _ -> None

let equal a b =
  match (a, b) with
  | Top, Top | Bottom, Bottom -> true
  | Ranges ra, Ranges rb ->
    List.length ra = List.length rb
    && List.for_all2
         (fun (x : Srange.t) (y : Srange.t) ->
           Srange.same_shape x y && Float.abs (x.p -. y.p) < Config.eps)
         ra rb
  | (Top | Bottom | Ranges _), _ -> false

(* --- Normalisation and compaction --- *)

(* Widened hull of two ranges; None when the endpoints are not comparable. *)
let hull (a : Srange.t) (b : Srange.t) : Srange.t option =
  match (Sym.min_sym a.lo b.lo, Sym.max_sym a.hi b.hi) with
  | Some lo, Some hi ->
    let stride =
      if Sym.same_base a.lo b.lo then
        P.gcd_stride (P.gcd_stride a.stride b.stride) (abs (a.lo.Sym.off - b.lo.Sym.off))
      else 1
    in
    let stride = if Sym.equal lo hi then 0 else max stride 1 in
    Srange.make ~p:(a.p +. b.p) ~lo ~hi ~stride
  | (None | Some _), _ -> None

(* Cost of a merge: spurious values admitted by the hull (∞ for uncountable
   merges, which are a last resort). *)
let merge_cost (a : Srange.t) (b : Srange.t) (merged : Srange.t) =
  match (Srange.count merged, Srange.count a, Srange.count b) with
  | Some cm, Some ca, Some cb -> float_of_int (cm - ca - cb)
  | _ -> infinity

(** Normalise a weighted range list: drop empty mass, coalesce identical
    shapes, rescale mass to 1, and compact down to the range budget by
    repeatedly merging the cheapest mergeable pair. ⊥ when compaction is
    impossible (too many unrelated symbolic shapes) or bounds overflow the
    representable magnitude — the paper's give-up point. *)
let normalize (rs : Srange.t list) : t =
  (* Zero-mass entries are gone; tiny-but-positive masses must be KEPT —
     dropping them would silently remove possible values (unsound) and can
     freeze a loop-carried φ at a false fixpoint. They disappear soundly by
     being hulled into neighbours during compaction. *)
  let rs = List.filter (fun (r : Srange.t) -> r.Srange.p > 0.0) rs in
  if rs = [] then Bottom
  else if List.exists Srange.too_big rs then Bottom
  else begin
    let rs = List.sort Srange.compare_sr rs in
    let rec coalesce = function
      | a :: b :: rest when Srange.same_shape a b ->
        coalesce ({ a with Srange.p = a.Srange.p +. b.Srange.p } :: rest)
      | a :: rest -> a :: coalesce rest
      | [] -> []
    in
    let rs = ref (coalesce rs) in
    let budget = !Config.max_ranges in
    let exception Give_up in
    (try
       while List.length !rs > budget do
         let arr = Array.of_list !rs in
         let best = ref None in
         Array.iteri
           (fun i a ->
             Array.iteri
               (fun j b ->
                 if i < j then
                   match hull a b with
                   | None -> ()
                   | Some merged ->
                     let cost = merge_cost a b merged in
                     (match !best with
                     | Some (_, _, _, c) when c <= cost -> ()
                     | _ -> best := Some (i, j, merged, cost)))
               arr)
           arr;
         match !best with
         | None -> raise Give_up
         | Some (i, j, merged, _) ->
           let rest = Array.to_list arr |> List.filteri (fun k _ -> k <> i && k <> j) in
           rs := List.sort Srange.compare_sr (merged :: rest)
       done;
       let total = List.fold_left (fun acc (r : Srange.t) -> acc +. r.Srange.p) 0.0 !rs in
       if total < Config.eps then Bottom
       else if List.exists Srange.too_big !rs then Bottom
       else
         Ranges
           (List.map (fun (r : Srange.t) -> { r with Srange.p = r.Srange.p /. total }) !rs)
     with Give_up -> Bottom)
  end

(* --- Pairwise arithmetic --- *)

(* Each pair operation yields [Some range] or [None] = not representable. *)

let pair_add (a : Srange.t) (b : Srange.t) : Srange.t option =
  Counters.tick ();
  match (Sym.add a.lo b.lo, Sym.add a.hi b.hi) with
  | Some lo, Some hi ->
    let stride = P.gcd_stride a.stride b.stride in
    Srange.make ~p:(a.p *. b.p) ~lo ~hi ~stride
  | (None | Some _), _ -> None

let pair_sub (a : Srange.t) (b : Srange.t) : Srange.t option =
  Counters.tick ();
  match (Sym.sub a.lo b.hi, Sym.sub a.hi b.lo) with
  | Some lo, Some hi ->
    let stride = P.gcd_stride a.stride b.stride in
    Srange.make ~p:(a.p *. b.p) ~lo ~hi ~stride
  | (None | Some _), _ -> None

(* Fully-numeric view of a range, when available. *)
let as_numeric (r : Srange.t) : P.t option =
  match Srange.kind r with Srange.Numeric -> Srange.prog r | _ -> None

let num_range ~p (lo : int) (hi : int) (stride : int) : Srange.t option =
  if abs lo > Sym.limit || abs hi > Sym.limit then None
  else Srange.make ~p ~lo:(Sym.num lo) ~hi:(Sym.num hi) ~stride

let pair_mul (a : Srange.t) (b : Srange.t) : Srange.t option =
  Counters.tick ();
  match (as_numeric a, as_numeric b) with
  | Some pa, Some pb ->
    let c1 = pa.P.lo * pb.P.lo
    and c2 = pa.P.lo * pb.P.hi
    and c3 = pa.P.hi * pb.P.lo
    and c4 = pa.P.hi * pb.P.hi in
    let lo = min (min c1 c2) (min c3 c4) and hi = max (max c1 c2) (max c3 c4) in
    (* every product ≡ lo_a*lo_b modulo g *)
    let g =
      P.gcd_stride
        (P.gcd_stride (pa.P.stride * pb.P.lo) (pb.P.stride * pa.P.lo))
        (pa.P.stride * pb.P.stride)
    in
    num_range ~p:(a.p *. b.p) lo hi (abs g)
  | _ ->
    (* symbolic × 1 and × 0 are still representable *)
    let singleton_value (r : Srange.t) =
      match as_numeric r with
      | Some pr when P.is_singleton pr -> Some pr.P.lo
      | _ -> None
    in
    (match (singleton_value a, singleton_value b) with
    | _, Some 1 -> Some { a with Srange.p = a.p *. b.p }
    | Some 1, _ -> Some { b with Srange.p = a.p *. b.p }
    | _, Some 0 | Some 0, _ ->
      Some (Srange.numeric ~p:(a.p *. b.p) (P.singleton 0))
    | _ -> None)

let pair_div (a : Srange.t) (b : Srange.t) : Srange.t option =
  Counters.tick ();
  match (as_numeric a, as_numeric b) with
  | Some pa, Some pb ->
    (* The corner rule needs a same-sign divisor interval; a straddling
       divisor (even one whose progression skips 0) admits ±1 and makes the
       corners non-extremal. *)
    if pb.P.lo <= 0 && pb.P.hi >= 0 then None
    else begin
      let q1 = pa.P.lo / pb.P.lo
      and q2 = pa.P.lo / pb.P.hi
      and q3 = pa.P.hi / pb.P.lo
      and q4 = pa.P.hi / pb.P.hi in
      let lo = min (min q1 q2) (min q3 q4) and hi = max (max q1 q2) (max q3 q4) in
      num_range ~p:(a.p *. b.p) lo hi 1
    end
  | _ -> (
    match as_numeric b with
    | Some pb when P.is_singleton pb && pb.P.lo = 1 -> Some { a with Srange.p = a.p *. b.p }
    | _ -> None)

let pair_mod (a : Srange.t) (b : Srange.t) : Srange.t option =
  Counters.tick ();
  match (as_numeric a, as_numeric b) with
  | Some pa, Some pb ->
    if pb.P.lo <= 0 then None
    else if P.is_singleton pa && P.is_singleton pb then
      (* exact: OCaml's mod matches C's truncating remainder *)
      num_range ~p:(a.p *. b.p) (pa.P.lo mod pb.P.lo) (pa.P.lo mod pb.P.lo) 0
    else if pa.P.lo >= 0 then begin
      if P.is_singleton pb then begin
        let c = pb.P.lo in
        if pa.P.hi < c then Some { a with Srange.p = a.p *. b.p } (* identity *)
        else begin
          let g = P.gcd_stride pa.P.stride c in
          (* results ≡ lo_a (mod g), within [0, min(c-1, hi_a)] *)
          let residue = pa.P.lo mod g in
          let bound = min (c - 1) pa.P.hi in
          if residue > bound then num_range ~p:(a.p *. b.p) residue residue 0
          else num_range ~p:(a.p *. b.p) residue bound (max g 1)
        end
      end
      else begin
        let bound = min (pb.P.hi - 1) pa.P.hi in
        num_range ~p:(a.p *. b.p) 0 (max bound 0) 1
      end
    end
    else begin
      (* negative dividends: C-style remainder keeps the dividend's sign *)
      let m = pb.P.hi - 1 in
      num_range ~p:(a.p *. b.p) (max (-m) pa.P.lo) (min m (max pa.P.hi m)) 1
    end
  | _ -> None

let next_pow2_minus1 n =
  let rec go acc = if acc >= n then acc else go ((acc * 2) + 1) in
  go 0

let pair_bitop (op : Vrp_lang.Ast.binop) (a : Srange.t) (b : Srange.t) : Srange.t option =
  Counters.tick ();
  match (as_numeric a, as_numeric b) with
  | Some pa, Some pb ->
    let p = a.p *. b.p in
    if P.is_singleton pa && P.is_singleton pb then begin
      let x = pa.P.lo and y = pb.P.lo in
      let v =
        match op with
        | Vrp_lang.Ast.Band -> x land y
        | Vrp_lang.Ast.Bor -> x lor y
        | Vrp_lang.Ast.Bxor -> x lxor y
        | _ -> assert false
      in
      num_range ~p v v 0
    end
    else if pa.P.lo >= 0 && pb.P.lo >= 0 then begin
      match op with
      | Vrp_lang.Ast.Band -> num_range ~p 0 (min pa.P.hi pb.P.hi) 1
      | Vrp_lang.Ast.Bor ->
        num_range ~p (max pa.P.lo pb.P.lo) (next_pow2_minus1 (max pa.P.hi pb.P.hi)) 1
      | Vrp_lang.Ast.Bxor -> num_range ~p 0 (next_pow2_minus1 (max pa.P.hi pb.P.hi)) 1
      | _ -> assert false
    end
    else None
  | _ -> None

let pair_shift (op : Vrp_lang.Ast.binop) (a : Srange.t) (b : Srange.t) : Srange.t option =
  Counters.tick ();
  match (as_numeric a, as_numeric b) with
  | Some pa, Some pb when P.is_singleton pb ->
    let k = pb.P.lo in
    if k < 0 || k > 40 then None
    else begin
      let p = a.p *. b.p in
      match op with
      | Vrp_lang.Ast.Shl -> num_range ~p (pa.P.lo lsl k) (pa.P.hi lsl k) (pa.P.stride lsl k)
      | Vrp_lang.Ast.Shr -> num_range ~p (pa.P.lo asr k) (pa.P.hi asr k) 1
      | _ -> assert false
    end
  | _ -> None

let pair_op (op : Vrp_lang.Ast.binop) a b : Srange.t option =
  match op with
  | Vrp_lang.Ast.Add -> pair_add a b
  | Vrp_lang.Ast.Sub -> pair_sub a b
  | Vrp_lang.Ast.Mul -> pair_mul a b
  | Vrp_lang.Ast.Div -> pair_div a b
  | Vrp_lang.Ast.Mod -> pair_mod a b
  | Vrp_lang.Ast.Band | Vrp_lang.Ast.Bor | Vrp_lang.Ast.Bxor -> pair_bitop op a b
  | Vrp_lang.Ast.Shl | Vrp_lang.Ast.Shr -> pair_shift op a b

(** Evaluate a binary operator over two lattice values. *)
let binop (op : Vrp_lang.Ast.binop) (a : t) (b : t) : t =
  match (a, b) with
  | Bottom, _ | _, Bottom -> Bottom
  | Top, _ | _, Top -> Top
  | Ranges ra, Ranges rb ->
    let exception Unrepresentable in
    (try
       let results =
         List.concat_map
           (fun x ->
             List.map
               (fun y ->
                 match pair_op op x y with
                 | Some r -> r
                 | None -> raise Unrepresentable)
               rb)
           ra
       in
       normalize results
     with Unrepresentable -> Bottom)

let unop (op : Vrp_ir.Ir.unop) (a : t) : t =
  match a with
  | Bottom -> Bottom
  | Top -> Top
  | Ranges ra ->
    let exception Unrepresentable in
    (try
       let results =
         List.map
           (fun (r : Srange.t) ->
             Counters.tick ();
             match as_numeric r with
             | None -> raise Unrepresentable
             | Some p ->
               let lo, hi =
                 match op with
                 | Vrp_ir.Ir.Neg -> (-p.P.hi, -p.P.lo)
                 | Vrp_ir.Ir.Bnot -> (-1 - p.P.hi, -1 - p.P.lo)
               in
               (match num_range ~p:r.Srange.p lo hi p.P.stride with
               | Some r -> r
               | None -> raise Unrepresentable))
           ra
       in
       normalize results
     with Unrepresentable -> Bottom)

(* --- Comparison --- *)

(* One-sided certainty for a pair of ranges: Some 1.0 / Some 0.0 when the
   predicate is decided by comparable bounds alone. *)
let pair_certain rel (x : Srange.t) (y : Srange.t) : float option =
  let open Vrp_lang.Ast in
  let sure_true =
    match rel with
    | Lt -> Sym.lt x.hi y.lo
    | Le -> Sym.le x.hi y.lo
    | Gt -> Sym.gt x.lo y.hi
    | Ge -> Sym.ge x.lo y.hi
    | Eq ->
      if
        Srange.is_singleton x && Srange.is_singleton y && Sym.equal x.lo y.lo
      then Some true
      else None
    | Ne -> (
      match (Sym.lt x.hi y.lo, Sym.gt x.lo y.hi) with
      | Some true, _ | _, Some true -> Some true
      | _ -> None)
  in
  match sure_true with
  | Some true -> Some 1.0
  | Some false | None -> (
    let negated = relop_negate rel in
    let sure_false =
      match negated with
      | Lt -> Sym.lt x.hi y.lo
      | Le -> Sym.le x.hi y.lo
      | Gt -> Sym.gt x.lo y.hi
      | Ge -> Sym.ge x.lo y.hi
      | Eq ->
        if Srange.is_singleton x && Srange.is_singleton y && Sym.equal x.lo y.lo then
          Some true
        else None
      | Ne -> (
        match (Sym.lt x.hi y.lo, Sym.gt x.lo y.hi) with
        | Some true, _ | _, Some true -> Some true
        | _ -> None)
    in
    match sure_false with Some true -> Some 0.0 | Some false | None -> None)

(* Probability that [x rel y] holds for one pair of ranges, or None if the
   pair is incomparable. *)
let pair_cmp_prob rel (x : Srange.t) (y : Srange.t) : float option =
  Counters.tick ();
  match pair_certain rel x y with
  | Some p -> Some p
  | None -> (
    (* Exact counting requires both ranges countable over a common frame:
       both numeric, or both offsets of the same base. *)
    match (Srange.kind x, Srange.kind y, Srange.prog x, Srange.prog y) with
    | Srange.Numeric, Srange.Numeric, Some px, Some py -> Some (P.prob_rel rel px py)
    | Srange.Same_base vx, Srange.Same_base vy, Some px, Some py when Var.equal vx vy ->
      Some (P.prob_rel rel px py)
    | _ -> None)

(** Probability that [a rel b] holds; [None] when the ranges are not
    comparable and the caller must fall back to heuristics. *)
let cmp_prob (rel : Vrp_lang.Ast.relop) (a : t) (b : t) : float option =
  match (a, b) with
  | (Top | Bottom), _ | _, (Top | Bottom) -> None
  | Ranges ra, Ranges rb ->
    let exception Incomparable in
    (try
       let total_mass = mass a *. mass b in
       if total_mass < Config.eps then None
       else begin
         let acc = ref 0.0 in
         List.iter
           (fun (x : Srange.t) ->
             List.iter
               (fun (y : Srange.t) ->
                 match pair_cmp_prob rel x y with
                 | Some p -> acc := !acc +. (x.p *. y.p *. p)
                 | None -> raise Incomparable)
               rb)
           ra;
         Some (Vrp_util.Stats.clamp ~lo:0.0 ~hi:1.0 (!acc /. total_mass))
       end
     with Incomparable -> None)

(** 0/1 value of a materialised comparison [x = (a rel b)]. *)
let cmp_value rel a b : t =
  match (a, b) with
  | Top, _ | _, Top -> Top
  | (Bottom | Ranges _), _ -> (
    match cmp_prob rel a b with
    | None -> Bottom
    | Some p ->
      if p < Config.eps then const_int 0
      else if p > 1.0 -. Config.eps then const_int 1
      else
        Ranges
          [ Srange.numeric ~p:(1.0 -. p) (P.singleton 0); Srange.numeric ~p (P.singleton 1) ])

(* --- Narrowing by assertions --- *)

(* Replace [r]'s upper bound by [limit] if that provably tightens or is the
   only representable intersection; probability scaled by the kept fraction
   when countable. None = provably empty. *)
let narrow_hi (r : Srange.t) (limit : Sym.t) : Srange.t option =
  let before = Srange.count r in
  let apply hi =
    match Srange.make ~p:r.Srange.p ~lo:r.lo ~hi ~stride:r.stride with
    | None -> None
    | Some nr -> (
      match (before, Srange.count nr) with
      | Some n0, Some nk when n0 > 0 ->
        let frac = float_of_int nk /. float_of_int n0 in
        if frac < Config.eps then None
        else Some { nr with Srange.p = nr.Srange.p *. frac }
      | _ -> Some nr)
  in
  (* [ge] rather than [cmp]: identical on same-base bounds, but the ambient
     relation oracle (symbolic algebra v2) can additionally decide cross-base
     pairs like [n-1 >= m], making the narrowing strictly tighter. *)
  match Sym.ge limit r.hi with
  | Some true -> Some r (* already within bound *)
  | Some false -> apply limit
  | None ->
    (* Bounds not comparable: both r.hi and limit are sound upper bounds.
       Prefer the numeric one — it can decide future comparisons and makes
       ranges countable once the other side narrows too. *)
    if Sym.is_numeric limit then
      Srange.make ~p:r.Srange.p ~lo:r.lo ~hi:limit ~stride:r.stride
    else Some r

let narrow_lo (r : Srange.t) (limit : Sym.t) : Srange.t option =
  let before = Srange.count r in
  let apply lo =
    (* keep stride alignment relative to the original lo when countable *)
    let lo =
      if Sym.same_base lo r.lo && r.stride > 0 && lo.Sym.off > r.lo.Sym.off then begin
        let delta = lo.Sym.off - r.lo.Sym.off in
        let aligned = r.lo.Sym.off + ((delta + r.stride - 1) / r.stride * r.stride) in
        { lo with Sym.off = aligned }
      end
      else lo
    in
    match Srange.make ~p:r.Srange.p ~lo ~hi:r.hi ~stride:r.stride with
    | None -> None
    | Some nr -> (
      match (before, Srange.count nr) with
      | Some n0, Some nk when n0 > 0 ->
        let frac = float_of_int nk /. float_of_int n0 in
        if frac < Config.eps then None
        else Some { nr with Srange.p = nr.Srange.p *. frac }
      | _ -> Some nr)
  in
  (* Oracle-aware for the same reason as [narrow_hi]. *)
  match Sym.le limit r.lo with
  | Some true -> Some r
  | Some false -> apply limit
  | None ->
    if Sym.is_numeric limit then
      Srange.make ~p:r.Srange.p ~lo:limit ~hi:r.hi ~stride:r.stride
    else Some r

(* Narrow one range of [a] by [rel] against the loosest bounds of [b]. Each
   side of the bound is optional: only the side the predicate needs must be
   available. *)
let narrow_range rel (r : Srange.t) ~(blo : Sym.t option) ~(bhi : Sym.t option) :
    Srange.t option =
  Counters.tick ();
  let open Vrp_lang.Ast in
  match (rel, blo, bhi) with
  | Lt, _, Some bhi -> narrow_hi r (Sym.add_const bhi (-1))
  | Le, _, Some bhi -> narrow_hi r bhi
  | Gt, Some blo, _ -> narrow_lo r (Sym.add_const blo 1)
  | Ge, Some blo, _ -> narrow_lo r blo
  | Eq, Some blo, Some bhi -> Option.bind (narrow_hi r bhi) (fun r -> narrow_lo r blo)
  | Eq, None, Some bhi -> narrow_hi r bhi
  | Eq, Some blo, None -> narrow_lo r blo
  | (Lt | Le | Gt | Ge | Eq), _, _ -> Some r
  | Ne, Some blo, Some bhi ->
    if Sym.equal blo bhi then begin
      let c = blo in
      match (Sym.cmp c r.lo, Sym.cmp c r.hi, Srange.prog r) with
      | Some 0, Some 0, _ -> None (* singleton equal to the excluded point *)
      | Some cl, _, _ when cl < 0 -> Some r (* below the range *)
      | _, Some ch, _ when ch > 0 -> Some r (* above the range *)
      | Some 0, _, Some _ ->
        (* excluded point is exactly lo: step past it *)
        Option.bind
          (Srange.make ~p:r.Srange.p
             ~lo:(Sym.add_const r.lo (max r.stride 1))
             ~hi:r.hi ~stride:r.stride)
          (fun nr ->
            match (Srange.count r, Srange.count nr) with
            | Some n0, Some nk ->
              Some { nr with Srange.p = nr.Srange.p *. (float_of_int nk /. float_of_int n0) }
            | _ -> Some nr)
      | _, Some 0, Some _ ->
        Option.bind
          (Srange.make ~p:r.Srange.p ~lo:r.lo
             ~hi:(Sym.add_const r.hi (-(max r.stride 1)))
             ~stride:r.stride)
          (fun nr ->
            match (Srange.count r, Srange.count nr) with
            | Some n0, Some nk ->
              Some { nr with Srange.p = nr.Srange.p *. (float_of_int nk /. float_of_int n0) }
            | _ -> Some nr)
      | _ -> (
        (* interior point: shape unchanged, scale mass when countable *)
        match Srange.count r with
        | Some n0 when n0 > 1 && Srange.countable r ->
          Some { r with Srange.p = r.Srange.p *. (float_of_int (n0 - 1) /. float_of_int n0) }
        | _ -> Some r)
    end
    else Some r
  | Ne, _, _ -> Some r

(** [assert_narrow a rel b] refines [a] to the sub-ranges satisfying
    [a rel b]. Sound: uses the loosest bound of [b]; returns [a] unchanged
    when no information can be extracted or narrowing would empty the
    value. *)
let assert_narrow (a : t) (rel : Vrp_lang.Ast.relop) (b : t) : t =
  match (a, b) with
  | (Top | Bottom), _ | _, (Top | Bottom) -> a
  | Ranges ra, Ranges rb ->
    (* Loosest bound per side over b's ranges; a side is only available when
       b's bounds on that side are mutually comparable. *)
    let fold_bound f acc_sym =
      List.fold_left
        (fun acc (r : Srange.t) ->
          match acc with
          | None -> None
          | Some s -> f s (acc_sym r))
        (Some (acc_sym (List.hd rb)))
        (List.tl rb)
    in
    let blo = fold_bound Sym.min_sym (fun (r : Srange.t) -> r.lo) in
    let bhi = fold_bound Sym.max_sym (fun (r : Srange.t) -> r.hi) in
    let narrowed = List.filter_map (fun r -> narrow_range rel r ~blo ~bhi) ra in
    (match normalize narrowed with Bottom -> a | v -> v)

(* --- Merging at φ-functions --- *)

(** Weighted merge: [union_weighted [(w1, v1); ...]] forms the distribution
    that is [vi] with probability [wi] (weights are normalised internally).
    Any ⊥ contribution with non-zero weight makes the result ⊥; ⊤
    contributions are ignored (not-yet-known paths). *)
let union_weighted (parts : (float * t) list) : t =
  (* Weights are unnormalised frequency masses, and a deep chain of loops
     decays the mass below any fixed cutoff (five sequential loops suffice
     for [Config.eps]). A live contribution must never be dropped on weight
     alone: its members would vanish from the merge, and with every part
     dropped the φ would sit at optimistic ⊤ — both unsound. The merge is
     scale-invariant ([normalize] rescales mass to 1), so when any live
     weight sits at or below the cutoff, divide all weights by the largest
     one instead of filtering; otherwise keep the exact arithmetic path. *)
  let parts = List.filter (fun (w, _) -> w > 0.0) parts in
  let parts =
    if List.exists (fun (w, _) -> w <= Config.eps) parts then
      let wmax = List.fold_left (fun m (w, _) -> Float.max m w) 0.0 parts in
      List.map (fun (w, v) -> (w /. wmax, v)) parts
    else parts
  in
  if parts = [] then Top
  else if List.exists (fun (_, v) -> is_bottom v) parts then Bottom
  else begin
    let parts = List.filter (fun (_, v) -> not (is_top v)) parts in
    if parts = [] then Top
    else begin
      let ranges =
        List.concat_map
          (fun (w, v) ->
            match v with
            | Ranges rs -> List.map (fun (r : Srange.t) -> { r with Srange.p = r.p *. w }) rs
            | Top | Bottom -> [])
          parts
      in
      normalize ranges
    end
  end

(* --- Substitution --- *)

(* Substitute one bound: if it has a base whose value is a numeric range,
   return the loosest numeric replacement (lo-side uses the base's min,
   hi-side its max) plus the base's stride for alignment widening.
   [only_singleton] restricts substitution to exactly-known bases: a
   non-singleton base is *correlated* with ranges derived from it (a loop
   counter's range depends on its own bound), so treating the substituted
   range and the base as independent uniform draws — which probability
   queries do — would be wrong. Branch prediction therefore substitutes
   singletons only; soundness-based clients (bounds checks, aliasing) take
   the full hull. *)
let subst_bound ~(lookup : Var.t -> t) ~(only_singleton : bool) (s : Sym.t) ~(is_lo : bool)
    : (Sym.t * int) option =
  match s.Sym.base with
  | None -> Some (s, 0)
  | Some v -> (
    match lookup v with
    | Ranges [ r ]
      when only_singleton && Srange.is_numeric r && Srange.is_singleton r ->
      Some (Sym.num (r.Srange.lo.Sym.off + s.Sym.off), 0)
    | _ when only_singleton -> None
    | Ranges rs
      when List.for_all
             (fun (r : Srange.t) ->
               (if is_lo then r.lo else r.hi).Sym.base = None)
             rs ->
      (* the relevant side of every range is numeric: a one-sided hull is
         available even if the other side is symbolic *)
      let ext =
        List.fold_left
          (fun acc (r : Srange.t) ->
            let edge = if is_lo then r.lo.Sym.off else r.hi.Sym.off in
            match acc with
            | None -> Some edge
            | Some e -> Some (if is_lo then min e edge else max e edge))
          None rs
      in
      let stride =
        List.fold_left (fun acc (r : Srange.t) -> P.gcd_stride acc r.Srange.stride) 0 rs
      in
      Option.map (fun e -> (Sym.num (e + s.Sym.off), stride)) ext
    | _ -> None)

(** Resolve symbolic bounds against current variable values: every bound
    whose base has a known numeric value is replaced by its numeric hull.
    Used before branch-probability queries so that e.g. [[0 : n : 1]]
    becomes countable once [n]'s range is known. *)
let subst ?(only_singleton = false) (a : t) ~(lookup : Var.t -> t) : t =
  match a with
  | Top | Bottom -> a
  | Ranges ra ->
    let changed = ref false in
    let rs =
      List.map
        (fun (r : Srange.t) ->
          match
            ( subst_bound ~lookup ~only_singleton r.lo ~is_lo:true,
              subst_bound ~lookup ~only_singleton r.hi ~is_lo:false )
          with
          | Some (lo, slo), Some (hi, shi)
            when not (Sym.equal lo r.lo && Sym.equal hi r.hi) -> (
            changed := true;
            let stride = P.gcd_stride r.stride (P.gcd_stride slo shi) in
            match Srange.make ~p:r.Srange.p ~lo ~hi ~stride with
            | Some nr -> nr
            | None ->
              (* substitution proved the range empty; keep a degenerate
                 singleton at the lower bound (sound enough for probability
                 queries; the mass is renormalised) *)
              Srange.singleton ~p:r.Srange.p lo)
          | _ -> r)
        ra
    in
    if !changed then normalize rs else a

(** [purely_numeric v] is [v] when every bound is numeric, otherwise ⊥.
    Used at function boundaries: symbolic bases are SSA names of one
    function and must not leak into another's analysis. *)
let purely_numeric (v : t) : t =
  match v with
  | Top | Bottom -> v
  | Ranges rs -> if List.for_all Srange.is_numeric rs then v else Bottom

(* --- Lattice operations ---

   The propagation engine works with [union_weighted] merges and its
   evaluation-quota safety valve; the operations below expose the plain
   lattice view of the same domain — ⊤ ⊑ ranges ⊑ ⊥ ordered by member-set
   inclusion — for the property-based test suite and the fuzzing oracles,
   which check the algebraic laws (commutativity, absorption, widening
   termination) over the member sets. *)

let join a b = union_weighted [ (1.0, a); (1.0, b) ]

let all_numeric rs = List.for_all Srange.is_numeric rs

(* q ⊆ p on progressions, exactly. *)
let prog_subset (q : P.t) (p : P.t) =
  if P.is_singleton q then P.mem q.P.lo p
  else if P.is_singleton p then false
  else
    p.P.lo <= q.P.lo && p.P.hi >= q.P.hi
    && q.P.stride mod p.P.stride = 0
    && (q.P.lo - p.P.lo) mod p.P.stride = 0

(** Greatest lower bound by member sets, conservatively over-approximated:
    numeric range sets intersect exactly (CRT per pair); as soon as a
    symbolic bound is involved the intersection is undecidable and [a] is
    returned unchanged (a superset of a ∩ b, hence sound). A provably
    empty intersection is ⊤. *)
let meet a b =
  match (a, b) with
  | Top, _ | _, Top -> Top
  | Bottom, v | v, Bottom -> v
  | Ranges ra, Ranges rb ->
    if not (all_numeric ra && all_numeric rb) then a
    else begin
      let pieces =
        List.concat_map
          (fun (r1 : Srange.t) ->
            List.filter_map
              (fun (r2 : Srange.t) ->
                match (Srange.prog r1, Srange.prog r2) with
                | Some p1, Some p2 ->
                  Option.map
                    (fun pi -> Srange.numeric ~p:(r1.Srange.p *. r2.Srange.p) pi)
                    (P.inter p1 p2)
                | _ -> None)
              rb)
          ra
      in
      if pieces = [] then Top else normalize pieces
    end

(** Classic widening, adapted to range sets: if [next] adds no members
    beyond [prev] (checked conservatively, per-range containment), keep
    [prev]; otherwise jump each growing bound straight to
    ±{!Config.widen_cap} (stride 1); growth beyond the cap, and any
    symbolic bound, goes to ⊥. Every chain
    [x1, widen x1 x2, widen (widen x1 x2) x3, ...] therefore changes at
    most three times: each step either is stable, caps one more bound, or
    lands on ⊥/⊤-free stable ground. *)
let widen ~prev ~next =
  match (prev, next) with
  | Bottom, _ | _, Bottom -> Bottom
  | Top, v -> v
  | _, Top -> prev
  | Ranges rp, Ranges rn ->
    if not (all_numeric rp && all_numeric rn) then Bottom
    else begin
      let progs rs = List.filter_map Srange.prog rs in
      let pp = progs rp and pn = progs rn in
      let covered = List.for_all (fun q -> List.exists (prog_subset q) pp) pn in
      if covered then prev
      else begin
        let cap = Config.widen_cap in
        let bounds ps =
          List.fold_left
            (fun (lo, hi) (p : P.t) -> (min lo p.P.lo, max hi p.P.hi))
            (max_int, min_int) ps
        in
        let lo_p, hi_p = bounds pp in
        let lo_n, hi_n = bounds (pp @ pn) in
        if lo_n < -cap || hi_n > cap then Bottom
        else begin
          let lo' = if lo_n < lo_p then -cap else lo_p in
          let hi' = if hi_n > hi_p then cap else hi_p in
          of_ranges [ Srange.numeric ~p:1.0 (P.make lo' hi' 1) ]
        end
      end
    end

(* --- Printing --- *)

let to_string = function
  | Top -> "T"
  | Bottom -> "_|_"
  | Ranges rs -> Printf.sprintf "{ %s }" (String.concat ", " (List.map Srange.to_string rs))
