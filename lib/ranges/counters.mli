(** Instrumentation counters: scoped per-run frames returned by value.
    Every range-pair primitive ticks [sub_ops] (Figure 6's "evaluation
    sub-operations"); the engine records evaluations, widenings and fuel
    exhaustions. {!with_counters} opens a fresh frame — events tick all open
    frames, so nested scopes include their children while sibling scopes
    stay isolated (no smearing through a shared global). *)

type t = {
  mutable evaluations : int;  (** engine expression evaluations (Figure 5) *)
  mutable sub_ops : int;  (** range-pair primitives (Figure 6) *)
  mutable widenings : int;  (** forced widenings to ⊥ (quota / growth cap) *)
  mutable fuel_exhaustions : int;  (** engine runs that ran out of fuel *)
}

val zero : unit -> t
val copy : t -> t

(** Run [f] with a fresh counter frame; returns its result and the frame's
    totals. Exception-safe: the frame is popped even if [f] raises. *)
val with_counters : (unit -> 'a) -> 'a * t

val tick : unit -> unit
val record_evaluation : unit -> unit
val record_widening : unit -> unit
val record_fuel_exhaustion : unit -> unit

(** Legacy root-frame interface: [reset] zeroes the always-open root frame,
    [read] returns its sub-operation count. *)
val reset : unit -> unit

val read : unit -> int
