(** Symbolic bounds: [SSA variable + constant] (paper §3.4).

    "each number in a range definition [may] be defined as:
    {e SSA Variable operator Constant}. For numeric values the variable
    component is NULL, and for purely symbolic values the constant component
    is +0." Allowing a single variable plus an offset keeps range operations
    and comparisons simple while capturing the common symbolic cases (loop
    bounds like [n - 1], copies, [x + 2]). *)

module Var = Vrp_ir.Var

type t = { base : Var.t option; off : int }

let num n = { base = None; off = n }
let of_var ?(off = 0) v = { base = Some v; off }

let is_numeric s = s.base = None

let equal a b =
  a.off = b.off
  &&
  match (a.base, b.base) with
  | None, None -> true
  | Some va, Some vb -> Var.equal va vb
  | None, Some _ | Some _, None -> false

let same_base a b =
  match (a.base, b.base) with
  | None, None -> true
  | Some va, Some vb -> Var.equal va vb
  | None, Some _ | Some _, None -> false

let add_const s n = { s with off = s.off + n }

let to_string s =
  match s.base with
  | None -> string_of_int s.off
  | Some v ->
    if s.off = 0 then Var.to_string v
    else if s.off > 0 then Printf.sprintf "%s+%d" (Var.to_string v) s.off
    else Printf.sprintf "%s%d" (Var.to_string v) s.off

(** Offsets beyond this magnitude are treated as unrepresentable; the caller
    widens to ⊥. Keeps all internal arithmetic far from [max_int]. *)
let limit = 1 lsl 40

let too_big s = abs s.off > limit

(* --- Partial arithmetic (None = not representable as [var + const]) --- *)

let add a b =
  match (a.base, b.base) with
  | None, None -> Some { base = None; off = a.off + b.off }
  | Some _, None -> Some { a with off = a.off + b.off }
  | None, Some _ -> Some { b with off = a.off + b.off }
  | Some _, Some _ -> None

let sub a b =
  match (a.base, b.base) with
  | None, None -> Some { base = None; off = a.off - b.off }
  | Some _, None -> Some { a with off = a.off - b.off }
  | Some va, Some vb when Var.equal va vb -> Some { base = None; off = a.off - b.off }
  | (None | Some _), Some _ -> None

(* --- Partial comparison (None = undecidable without the base's value) --- *)

(* Offsets beyond [limit] belong to bounds the caller is about to widen to ⊥;
   refusing to order them keeps every decided comparison inside the window
   where the rest of the range arithmetic is exact. *)
let cmp a b : int option =
  if same_base a b && not (too_big a) && not (too_big b) then
    Some (Int.compare a.off b.off)
  else None

(* --- Ambient relation oracle (symbolic algebra v2) ---

   When [cmp] gives up — different base variables, or a same-base pair beyond
   the offset cap — the engine may have relational facts (from assertions and
   SSA def equations, see [Vrp_core.Alg]) that still decide the comparison.
   The oracle is ambient, domain-local state rather than a parameter because
   these comparisons happen deep inside [Value]/[Srange] arithmetic whose
   signatures should not know about fact environments; the same pattern as
   [Counters.frames]. With no oracle installed every answer below is exactly
   the v1 behaviour. *)

type oracle = {
  o_le : t -> t -> bool option;  (** decides [a <= b] *)
  o_lt : t -> t -> bool option;  (** decides [a < b] *)
}

let oracle_key : oracle option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let with_relation_oracle o f =
  let saved = Domain.DLS.get oracle_key in
  Domain.DLS.set oracle_key (Some o);
  Fun.protect ~finally:(fun () -> Domain.DLS.set oracle_key saved) f

let consult q =
  match Domain.DLS.get oracle_key with None -> None | Some o -> q o

let le a b =
  match cmp a b with
  | Some c -> Some (c <= 0)
  | None -> consult (fun o -> o.o_le a b)

let lt a b =
  match cmp a b with
  | Some c -> Some (c < 0)
  | None -> consult (fun o -> o.o_lt a b)

let ge a b =
  match cmp a b with
  | Some c -> Some (c >= 0)
  | None -> consult (fun o -> o.o_le b a)

let gt a b =
  match cmp a b with
  | Some c -> Some (c > 0)
  | None -> consult (fun o -> o.o_lt b a)

let min_sym a b = Option.map (fun c -> if c <= 0 then a else b) (cmp a b)
let max_sym a b = Option.map (fun c -> if c >= 0 then a else b) (cmp a b)
