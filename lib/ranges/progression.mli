(** Finite arithmetic progressions — the numeric skeleton of the paper's
    ranges. [(lo, hi, stride)] denotes [{lo, lo+stride, ..., hi}], with
    [stride = 0] iff the progression is a singleton. All counting is exact
    integer mathematics except the probability of an order comparison
    between two very large progressions, which uses a continuous-uniform
    closed form (error O(1/min(n_a, n_b))). *)

type t = { lo : int; hi : int; stride : int }

(** Representation invariant. *)
val valid : t -> bool

(** Normalising constructor: clamps [hi] down onto the progression and
    canonicalises singletons to stride 0.
    @raise Invalid_argument if [hi < lo]. *)
val make : int -> int -> int -> t

val singleton : int -> t

(** Number of elements. *)
val count : t -> int

val is_singleton : t -> bool
val mem : int -> t -> bool

(** gcd treating 0 as the identity, so strides combine correctly. *)
val gcd_stride : int -> int -> int

(** Number of elements strictly below (resp. at most) a value. *)
val count_below : t -> int -> int

val count_at_most : t -> int -> int

(** Exact size of the intersection of two progressions (CRT). *)
val count_common : t -> t -> int

(** The intersection itself: the (unique) progression of common elements,
    [None] when disjoint. *)
val inter : t -> t -> t option

(** Exact P(u = v) for independent uniform draws u ∈ a, v ∈ b. *)
val prob_eq : t -> t -> float

(** P(u < v); exact when the smaller progression has at most {!exact_cap}
    elements, continuous-uniform approximation beyond. *)
val prob_lt : t -> t -> float

val exact_cap : int

(** P(u rel v) for any comparison operator. *)
val prob_rel : Vrp_lang.Ast.relop -> t -> t -> float

val to_string : t -> string
