(** Sum-of-products terms: the symbolic-algebra-v2 normal form.

    A term is [c0 + Σ ci·Πvj] — an integer constant plus a sum of monomials,
    each monomial a product of SSA variables with an integer coefficient.
    This strictly generalises [Sym.t] ([var + const] is the special case of
    one degree-1 monomial with coefficient 1) and is what lets relational
    facts such as [2*i + 1 <= len] or [i < n - 1] survive normalisation
    instead of dying at the first non-unit coefficient.

    Terms are kept in a canonical normal form — monomials sorted (by degree,
    then variable ids), zero coefficients dropped, variables within a
    monomial sorted — so structural equality is semantic equality and the
    qcheck algebra laws (idempotent normalisation, commutative/associative
    add and mul, distribution) hold by construction.

    Magnitudes are capped at [Sym.limit] and degrees at [max_degree]; [mul]
    is partial and returns [None] rather than build a term the prover could
    not reason about soundly. *)

module Var = Vrp_ir.Var

type t

val max_degree : int
(** Largest monomial degree [mul] will build (3). *)

val max_terms : int
(** Largest number of monomials [mul] will build (12). *)

val zero : t
val one : t
val const : int -> t
val of_var : Var.t -> t

val of_sym : Sym.t -> t
(** Embed a v1 symbolic bound ([base + off]). *)

val to_sym : t -> Sym.t option
(** Back to v1 form when the term is [const] or [var + const] with unit
    coefficient; [None] otherwise. *)

val const_value : t -> int option
(** [Some c] iff the term has no monomials. *)

val const_part : t -> int
(** The constant [c0] of any term. *)

val is_const : t -> bool
val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t

val scale : int -> t -> t
(** Multiply by an integer constant. *)

val mul : t -> t -> t option
(** Full product; [None] when the result would exceed [max_degree],
    [max_terms], or the [Sym.limit] coefficient cap. *)

val too_big : t -> bool
(** Any coefficient or the constant exceeds [Sym.limit] in magnitude. *)

val cmp : t -> t -> int option
(** [Some c] when the difference of the two terms is a constant (the
    monomials agree), mirroring [Sym.cmp]; [None] otherwise. Relational
    facts between terms whose difference is not constant live in
    {!Alg_env}. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val eval : env:(Var.t -> int) -> t -> int
(** Evaluate under a concrete integer environment — the substitution
    soundness tests drive every algebraic law through this. *)

val vars : t -> Var.t list
(** Distinct variables, sorted. *)

val terms : t -> (Var.t list * int) list
(** All monomials with their coefficients, in canonical order. *)

val leading : t -> (Var.t list * int) option
(** First monomial in the canonical order with its coefficient, [None] for
    constants. The prover eliminates leading monomials against facts. *)

val coeff_of : t -> Var.t list -> int
(** Coefficient of the given (sorted) monomial, 0 when absent. *)

val to_string : t -> string
