(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation, runs the ablation sweeps DESIGN.md calls out, and times the
   core phases with Bechamel.

   Usage:
     bench/main.exe                 run everything (figures + ablations + perf)
     bench/main.exe fig4            the worked example (paper Figure 4)
     bench/main.exe fig5            expression evaluations vs program size
     bench/main.exe fig6            evaluation sub-operations vs program size
     bench/main.exe fig7            SPECint-style accuracy curves
     bench/main.exe fig8            SPECfp-style accuracy curves
     bench/main.exe ablate-r        range-budget sweep (R = 1..16)
     bench/main.exe ablate-worklist flow-first vs SSA-first draining
     bench/main.exe ablate-assert   with/without branch assertions
     bench/main.exe ablate-derive   with/without loop derivation
     bench/main.exe ablate-trip     trip-count prior sweep
     bench/main.exe perf            Bechamel micro/macro timings
     bench/main.exe batch [--json]  batch scheduler + summary-cache throughput
     bench/main.exe server [--json] vrpd request throughput, latency percentiles,
                                    warm-cache hit rate and incremental re-analysis *)

module Figures = Vrp_evaluation.Figures
module Error_analysis = Vrp_evaluation.Error_analysis
module Engine = Vrp_core.Engine
module Pipeline = Vrp_core.Pipeline
module Interp = Vrp_profile.Interp
module Suite = Vrp_suite.Suite

let header title =
  Printf.printf "\n================ %s ================\n%!" title

(* --- Figures --- *)

let fig4 () =
  header "Figure 4: worked example (paper Fig. 2) - ranges and probabilities";
  print_string (Figures.render_fig4 (Figures.fig4 ()));
  print_string
    "paper reference: x1<10 = 91%, x2>7 = 20%, y2==1 = 30%; x1 = 1[0:10:1],\n\
     y2 = { 0.8[0:7:1], 0.2[1:1:0] }\n"

let complexity_points = lazy (Figures.fig5_6 ())

let fig5 () =
  header "Figure 5: expression evaluations vs instructions";
  print_string
    (Figures.render_complexity (Lazy.force complexity_points)
       ~metric:(fun p -> p.Figures.evaluations)
       ~metric_name:"evaluations")

let fig6 () =
  header "Figure 6: evaluation sub-operations vs instructions";
  print_string
    (Figures.render_complexity (Lazy.force complexity_points)
       ~metric:(fun p -> p.Figures.sub_operations)
       ~metric_name:"sub-operations")

let fig7 () =
  header "Figure 7: SPECint-style suite accuracy (unweighted & weighted)";
  List.iter
    (fun r -> print_string (Figures.render_accuracy r))
    (Figures.accuracy ~category:Suite.Int_suite ())

let fig8 () =
  header "Figure 8: SPECfp-style suite accuracy (unweighted & weighted)";
  List.iter
    (fun r -> print_string (Figures.render_accuracy r))
    (Figures.accuracy ~category:Suite.Fp_suite ())

(* --- Ablations --- *)

(* Mean |error| over the whole suite for a given engine configuration, plus
   total expression evaluations (cost proxy). *)
let evaluate_config (config : Engine.config) : float * int =
  let errors = ref [] in
  let cost = ref 0 in
  List.iter
    (fun (b : Suite.benchmark) ->
      let c = Pipeline.compile b.Suite.source in
      let observed = (Interp.run c.Pipeline.ssa ~args:b.Suite.ref_args).Interp.profile in
      List.iter
        (fun fn ->
          let res = Engine.analyze ~config fn in
          cost := !cost + res.Engine.evaluations)
        c.Pipeline.ssa.Vrp_ir.Ir.fns;
      let prediction, _ = Pipeline.vrp_predictions ~config c.Pipeline.ssa in
      errors :=
        Error_analysis.mean_error ~weighted:false
          (Error_analysis.branch_errors ~observed prediction)
        :: !errors)
    Suite.benchmarks;
  (Vrp_util.Stats.mean !errors, !cost)

let ablate_r () =
  header "Ablation: range budget R (paper fixes R = 4)";
  Printf.printf "  %4s %18s %16s\n" "R" "mean |error| (pp)" "evaluations";
  List.iter
    (fun r ->
      Vrp_ranges.Config.with_max_ranges r (fun () ->
          let err, cost = evaluate_config Engine.default_config in
          Printf.printf "  %4d %18.2f %16d\n%!" r err cost))
    [ 1; 2; 4; 8; 16 ]

let ablate_worklist () =
  header "Ablation: worklist discipline (paper prefers the FlowWorkList)";
  List.iter
    (fun flow_first ->
      let err, cost = evaluate_config { Engine.default_config with flow_first } in
      Printf.printf "  %-10s mean |error| = %.2f pp, evaluations = %d\n%!"
        (if flow_first then "flow-first" else "ssa-first")
        err cost)
    [ true; false ]

let ablate_assert () =
  header "Ablation: branch assertions (paper 3.8)";
  List.iter
    (fun use_assertions ->
      let err, cost = evaluate_config { Engine.default_config with use_assertions } in
      Printf.printf "  %-14s mean |error| = %.2f pp, evaluations = %d\n%!"
        (if use_assertions then "with-asserts" else "no-asserts")
        err cost)
    [ true; false ]

let ablate_derive () =
  header "Ablation: loop-carried derivation (paper 3.6)";
  (* Micro-study first: counted loops of increasing trip count, analysed
     with an unlimited quota. The paper: without derivation "each loop would
     execute as many times during propagation as it would at runtime". *)
  Printf.printf "  counted loop micro-study (quota = trip count + 8):\n";
  List.iter
    (fun trips ->
      let src =
        Printf.sprintf
          "int main(int n, int seed) {\n\
          \  int acc = 0;\n\
          \  for (int i = 0; i < %d; i++) { acc = (acc + i) %% 65536; }\n\
          \  return acc;\n\
           }\n"
          trips
      in
      let c = Pipeline.compile src in
      let fn = List.hd c.Pipeline.ssa.Vrp_ir.Ir.fns in
      let costs =
        List.map
          (fun use_derivation ->
            let config =
              { Engine.default_config with use_derivation; eval_quota = trips + 8 }
            in
            (Engine.analyze ~config fn).Engine.evaluations)
          [ true; false ]
      in
      match costs with
      | [ with_d; without_d ] ->
        Printf.printf "    trips=%-7d evaluations: with-derive=%-6d no-derive=%d\n%!"
          trips with_d without_d
      | _ -> ())
    [ 100; 1_000; 10_000 ];
  List.iter
    (fun use_derivation ->
      let err, cost = evaluate_config { Engine.default_config with use_derivation } in
      Printf.printf "  %-14s (default quota) mean |error| = %.2f pp, evaluations = %d\n%!"
        (if use_derivation then "with-derive" else "no-derive")
        err cost)
    [ true; false ]

let ablate_trip_prior () =
  header "Ablation: back-edge trip-count prior at loop-header phis";
  Printf.printf "  %8s %18s\n" "prior" "mean |error| (pp)";
  List.iter
    (fun trip_prior ->
      let err, _ = evaluate_config { Engine.default_config with trip_prior } in
      Printf.printf "  %8.1f %18.2f\n%!" trip_prior err)
    [ 1.0; 4.0; 10.0; 25.0; 100.0 ]

(* --- Batch-analysis throughput (scheduler + summary cache) --- *)

(* Times the parallel batch subsystem over the suite plus synthetic
   programs: sequential reference, [jobs]-wide fan-out, and cold/warm runs
   against the summary cache — cross-checking along the way that every
   variant renders byte-identically to --jobs 1. With --json, emits one
   machine-readable object (for CI artifacts) instead of the table.

   Speedup honesty: the container this runs in may well have a single core
   (CI runners often do); the [cores] field records what was available so a
   speedup of ~1.0 on a 1-core box is not mistaken for a scheduler bug. *)
let batch_bench ~json () =
  let module Batch = Vrp_sched.Batch in
  let module Supervisor = Vrp_sched.Supervisor in
  let module Summary_cache = Vrp_cache.Summary_cache in
  let sources =
    List.map
      (fun (b : Suite.benchmark) -> (b.Suite.name ^ ".mc", b.Suite.source))
      Suite.benchmarks
    @ List.init 6 (fun i ->
          ( Printf.sprintf "synth%02d.mc" i,
            Vrp_suite.Synth.generate ~units:(12 + (6 * i)) ~seed:(4242 + i) () ))
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let jobs = 4 in
  let reference, seq_s = time (fun () -> Batch.analyze_sources ~jobs:1 sources) in
  let parallel, par_s = time (fun () -> Batch.analyze_sources ~jobs sources) in
  if Batch.render parallel <> Batch.render reference then
    failwith "batch bench: parallel run diverged from the sequential reference";
  let cache = Summary_cache.create () in
  let _, cold_s = time (fun () -> Batch.analyze_sources ~cache ~jobs sources) in
  let warm, warm_s = time (fun () -> Batch.analyze_sources ~cache ~jobs sources) in
  if Batch.render warm <> Batch.render reference then
    failwith "batch bench: warm-cache run diverged from fresh analysis";
  (* Supervised pass: a generous deadline that healthy analyses never hit,
     cross-checked byte-identical — supervision must be a no-op on results. *)
  let sup_policy =
    { Supervisor.default_policy with deadline_ms = Some 30_000; retries = 1 }
  in
  let (supervised, sup_counters), sup_s =
    time (fun () ->
        Supervisor.with_supervisor ~policy:sup_policy (fun supervisor ->
            let r = Batch.analyze_sources ~supervisor ~jobs sources in
            (r, Supervisor.counters supervisor)))
  in
  if Batch.render supervised <> Batch.render reference then
    failwith "batch bench: supervised run diverged from the sequential reference";
  let agg = Batch.aggregate reference in
  let c = Summary_cache.counters cache in
  let hit_rate =
    float_of_int c.Summary_cache.hits
    /. float_of_int (max 1 (c.Summary_cache.hits + c.Summary_cache.misses))
  in
  let fns_per_sec t =
    if t > 0.0 then float_of_int agg.Batch.functions /. t else 0.0
  in
  let speedup = if par_s > 0.0 then seq_s /. par_s else 0.0 in
  let cores = Domain.recommended_domain_count () in
  if json then
    Printf.printf
      "{\"files\": %d, \"functions\": %d, \"branches\": %d, \"jobs\": %d, \
       \"cores\": %d,\n\
      \ \"wall_s\": {\"jobs1\": %.6f, \"jobs%d\": %.6f, \"cache_cold\": %.6f, \
       \"cache_warm\": %.6f, \"supervised\": %.6f},\n\
      \ \"functions_per_sec\": {\"jobs1\": %.1f, \"jobs%d\": %.1f, \
       \"cache_warm\": %.1f},\n\
      \ \"speedup_vs_jobs1\": %.3f, \"warm_speedup_vs_jobs1\": %.3f,\n\
      \ \"cache\": {\"hits\": %d, \"disk_hits\": %d, \"misses\": %d, \
       \"invalidations\": %d, \"quarantined\": %d, \"hit_rate\": %.3f},\n\
      \ \"supervision\": {\"deadline_ms\": 30000, \"retries_allowed\": 1, \
       \"deadline_hits\": %d, \"retries\": %d, \"gave_up\": %d},\n\
      \ \"deterministic\": true}\n"
      agg.Batch.files agg.Batch.functions agg.Batch.branches jobs cores seq_s
      jobs par_s cold_s warm_s sup_s (fns_per_sec seq_s) jobs (fns_per_sec par_s)
      (fns_per_sec warm_s) speedup
      (if warm_s > 0.0 then seq_s /. warm_s else 0.0)
      c.Summary_cache.hits c.Summary_cache.disk_hits c.Summary_cache.misses
      c.Summary_cache.invalidations c.Summary_cache.quarantined hit_rate
      sup_counters.Supervisor.deadline_hits sup_counters.Supervisor.retry_count
      sup_counters.Supervisor.gave_up
  else begin
    header "Batch analysis: domain-pool scheduler + summary cache";
    Printf.printf "  corpus: %d files, %d functions, %d branches (%d cores available)\n"
      agg.Batch.files agg.Batch.functions agg.Batch.branches cores;
    Printf.printf "  %-18s %10s %16s\n" "run" "wall (s)" "functions/s";
    List.iter
      (fun (name, t) -> Printf.printf "  %-18s %10.4f %16.1f\n" name t (fns_per_sec t))
      [
        ("jobs=1", seq_s);
        (Printf.sprintf "jobs=%d" jobs, par_s);
        ("cache cold", cold_s);
        ("cache warm", warm_s);
        ("supervised", sup_s);
      ];
    Printf.printf "  speedup vs jobs=1: %.2fx parallel, %.2fx warm cache\n" speedup
      (if warm_s > 0.0 then seq_s /. warm_s else 0.0);
    Printf.printf "  %s\n" (Summary_cache.counters_line cache);
    Printf.printf "  supervision (30s deadline, 1 retry): %d deadline hit(s), %d retry(ies)\n"
      sup_counters.Supervisor.deadline_hits sup_counters.Supervisor.retry_count;
    Printf.printf "  all variants rendered byte-identically to jobs=1\n%!"
  end

(* --- Analysis-server throughput (vrpd request path) --- *)

(* Drives the daemon's request seam ([Server.handle]) from concurrent
   client threads — the same code path a socket connection runs, minus the
   kernel round-trip — and measures what ISSUE acceptance pins: requests
   per second, p50/p99 latency, summary-cache hit rate cold vs warm, and a
   warm-daemon incremental re-analysis of a one-function edit beating the
   cold one-shot CLI wall-clock. Every response is cross-checked
   byte-identical to the one-shot [Ops] output along the way. *)
let server_bench ~json () =
  let module Server = Vrp_server.Server in
  let module Protocol = Vrp_server.Protocol in
  let module Json = Vrp_server.Json in
  let module Ops = Vrp_server.Ops in
  (* The churn pass writes into sockets of freshly killed workers; see
     EPIPE (retried by the proxy), don't die of SIGPIPE. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let sources =
    List.map
      (fun (b : Suite.benchmark) -> (b.Suite.name ^ ".mc", b.Suite.source))
      Suite.benchmarks
  in
  (* Cold one-shot reference: what `vrpc predict FILE` costs and prints. *)
  let expected, one_shot_s =
    time (fun () ->
        List.map
          (fun (n, src) -> (n, Ops.predict ~opts:Ops.default_opts ~source:src ()))
          sources)
  in
  let jobs = 4 and clients = 8 and warm_rounds = 3 in
  let server = Server.create ~settings:{ Server.default_settings with Server.jobs } () in
  Fun.protect ~finally:(fun () -> Server.shutdown server) @@ fun () ->
  let predict_req (name, source) =
    {
      Protocol.id = 1;
      op = "predict";
      params = Json.Obj [ ("source", Json.String source); ("name", Json.String name) ];
    }
  in
  let mismatches = Atomic.make 0 in
  let check name (resp : Protocol.response) =
    let want : Ops.outcome = List.assoc name expected in
    if not (resp.Protocol.ok && resp.Protocol.out = want.Ops.out && resp.Protocol.code = want.Ops.code)
    then Atomic.incr mismatches
  in
  (* Fan [reqs] out over [clients] threads; collect per-request latencies. *)
  let run_pass_on handle reqs =
    let slices = Array.make clients [] in
    List.iteri (fun i r -> slices.(i mod clients) <- r :: slices.(i mod clients)) reqs;
    let results = Array.make clients [] in
    let threads =
      Array.mapi
        (fun i slice ->
          Thread.create
            (fun () ->
              results.(i) <-
                List.map
                  (fun (name, src) ->
                    let resp, dt = time (fun () -> handle (predict_req (name, src))) in
                    check name resp;
                    dt)
                  slice)
            ())
        slices
    in
    Array.iter Thread.join threads;
    Array.to_list results |> List.concat
  in
  let run_pass reqs = run_pass_on (Server.handle server) reqs in
  let cache_counters () =
    let r = Server.handle server { Protocol.id = 0; op = "status"; params = Json.Null } in
    let c = Option.value ~default:Json.Null (List.assoc_opt "cache" r.Protocol.data) in
    let f k = Option.value ~default:0 (Json.mem_int k c) in
    (f "hits", f "misses")
  in
  let hit_rate (h0, m0) (h1, m1) =
    let h = h1 - h0 and m = m1 - m0 in
    (h, m, float_of_int h /. float_of_int (max 1 (h + m)))
  in
  let c0 = cache_counters () in
  let cold_lat, cold_s = time (fun () -> run_pass sources) in
  let c1 = cache_counters () in
  let warm_reqs = List.concat (List.init warm_rounds (fun _ -> sources)) in
  let warm_lat, warm_s = time (fun () -> run_pass warm_reqs) in
  let c2 = cache_counters () in
  if Atomic.get mismatches > 0 then
    failwith "server bench: a daemon response diverged from the one-shot CLI";
  let cold_hits, cold_misses, cold_rate = hit_rate c0 c1 in
  let warm_hits, warm_misses, warm_rate = hit_rate c1 c2 in
  (* Observability overhead: the same warm pass with the span tracer
     capturing vs disabled. The metric counters have no off switch (their
     sharded increments are part of both sides); the toggle is the tracer,
     whose disabled path claims to cost one atomic load. Best-of-two per
     side damps scheduler noise; the budget is asserted here and the
     req/s + p99 land in the JSON so the perf gate pins them. *)
  let best_of_two f =
    let l1, t1 = time f in
    let l2, t2 = time f in
    if t1 <= t2 then (l1, t1) else (l2, t2)
  in
  let obs_off_lat, obs_off_s = best_of_two (fun () -> run_pass warm_reqs) in
  Vrp_obs.Trace.enable ~capacity:(1 lsl 18) ();
  let obs_on_lat, obs_on_s =
    Fun.protect ~finally:Vrp_obs.Trace.disable (fun () ->
        best_of_two (fun () -> run_pass warm_reqs))
  in
  let obs_spans = List.length (Vrp_obs.Trace.events ()) in
  let obs_overhead_pct =
    if obs_off_s > 0.0 then 100.0 *. (obs_on_s -. obs_off_s) /. obs_off_s
    else 0.0
  in
  (* < 5% relative, with absolute slack so a millisecond-scale pass can't
     fail on scheduler jitter alone. *)
  if obs_overhead_pct > 5.0 && obs_on_s -. obs_off_s > 0.05 then
    failwith
      (Printf.sprintf
         "server bench: tracing overhead %.1f%% exceeds the 5%% budget"
         obs_overhead_pct);
  if Atomic.get mismatches > 0 then
    failwith "server bench: a traced response diverged from the one-shot CLI";
  let percentile p lat =
    let a = Array.of_list lat in
    Array.sort compare a;
    let n = Array.length a in
    if n = 0 then 0.0
    else a.(min (n - 1) (int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1))
  in
  let ms t = 1000.0 *. t in
  let rps n t = if t > 0.0 then float_of_int n /. t else 0.0 in
  (* Incremental re-analysis: a session submits a many-function program,
     then re-submits it with one function edited. The daemon re-runs only
     the dirty call-graph cone; everything else is a warm cache hit. *)
  let n_fns = 12 in
  let inc_src cutoff =
    let fn i k =
      Printf.sprintf
        "int f%d(int x) {\n\
        \  int acc = 0;\n\
        \  for (int i = 0; i < 40; i++) {\n\
        \    if (x > %d) acc = (acc + i * %d) %% 257; else acc = acc - 1;\n\
        \  }\n\
        \  return acc %% 16;\n\
         }\n"
        i k (i + 2)
    in
    String.concat ""
      (List.init n_fns (fun i -> fn i (if i = 0 then cutoff else 7))
      @ [
          "int main(int n, int seed) {\n  int s = 0;\n";
          String.concat ""
            (List.init n_fns (fun i -> Printf.sprintf "  s = s + f%d(n + %d);\n" i i));
          "  return s;\n}\n";
        ])
  in
  let v1 = inc_src 7 and v2 = inc_src 9 in
  let analyze_req source =
    {
      Protocol.id = 1;
      op = "analyze";
      params =
        Json.Obj
          [
            ("session", Json.String "bench");
            ("name", Json.String "inc.mc");
            ("source", Json.String source);
          ];
    }
  in
  let cold_edit, cold_edit_s =
    time (fun () -> Ops.predict ~opts:Ops.default_opts ~source:v2 ())
  in
  ignore (Server.handle server (analyze_req v1));
  let warm_edit, warm_edit_s = time (fun () -> Server.handle server (analyze_req v2)) in
  if warm_edit.Protocol.out <> cold_edit.Ops.out then
    failwith "server bench: incremental re-analysis diverged from the cold one-shot";
  let plan = Option.value ~default:Json.Null (List.assoc_opt "plan" warm_edit.Protocol.data) in
  let delta = Option.value ~default:Json.Null (List.assoc_opt "cache" warm_edit.Protocol.data) in
  let plan_n k =
    match Json.member k plan with Some (Json.List l) -> List.length l | _ -> 0
  in
  let delta_n k = Option.value ~default:0 (Json.mem_int k delta) in
  let cores = Domain.recommended_domain_count () in
  (* Fleet: the same predict workload through the front door's routing and
     proxy seam ([Fleet.handle]) over in-process socket workers — steady
     state first, then under churn with the kill-worker chaos fault firing
     mid-pass (workers crash-replaced while requests are in flight). Every
     response is still byte-checked against the one-shot CLI. *)
  let module Fleet = Vrp_server.Fleet in
  let fleet_workers = 3 and fleet_rounds = 3 and kill_every = 12 in
  let fleet_reqs = List.concat (List.init fleet_rounds (fun _ -> sources)) in
  let fleet_pass ~tag ~fault =
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "vrp-bench-fleet-%d-%s" (Unix.getpid ()) tag)
    in
    let settings =
      { (Fleet.default_settings ~dir) with Fleet.size = fleet_workers; fault }
    in
    let fleet = Fleet.create ~settings ~spawner:(Fleet.in_process_spawner ()) () in
    Fun.protect
      ~finally:(fun () ->
        Fleet.shutdown fleet;
        try Unix.rmdir dir with _ -> ())
      (fun () ->
        let lat, wall = time (fun () -> run_pass_on (Fleet.handle fleet) fleet_reqs) in
        let c = Fleet.counters fleet in
        (lat, wall, c.Fleet.replaced, c.Fleet.failovers))
  in
  let fsteady_lat, fsteady_s, _, _ = fleet_pass ~tag:"steady" ~fault:None in
  let fchurn_lat, fchurn_s, fchurn_replaced, fchurn_failovers =
    fleet_pass ~tag:"churn"
      ~fault:(Some (Vrp_diag.Diag.Fault.Kill_worker kill_every))
  in
  if Atomic.get mismatches > 0 then
    failwith "server bench: a fleet response diverged from the one-shot CLI";
  (* Overload: the same predict workload pushed through a deliberately
     small admission gate at 2× its in-flight capacity. Shed requests honor
     the busy response's retry_after_ms and replay, so the section reports
     what a saturated daemon sustains — throughput, tail latency including
     the busy waits, and how much the gate shed — still byte-identical. *)
  let module Admit = Vrp_server.Admit in
  let o_capacity = 4 in
  let o_server =
    Server.create
      ~settings:
        {
          Server.default_settings with
          Server.jobs;
          Server.limits =
            {
              Admit.default_limits with
              Admit.max_inflight = o_capacity;
              max_queue = o_capacity;
              queue_wait_ms = 20;
            };
        }
      ()
  in
  let o_reqs = List.concat (List.init warm_rounds (fun _ -> sources)) in
  let o_lat, o_s, o_shed =
    Fun.protect
      ~finally:(fun () -> Server.shutdown o_server)
      (fun () ->
        let handle_busy_retry req =
          let rec go () =
            let resp = Server.handle o_server req in
            match Protocol.retry_after_ms resp with
            | Some ms ->
              Thread.delay (float_of_int (max 1 ms) /. 1000.);
              go ()
            | None -> resp
          in
          go ()
        in
        let lat, wall = time (fun () -> run_pass_on handle_busy_retry o_reqs) in
        let a = Admit.counters (Server.admit o_server) in
        (lat, wall, a.Admit.shed_requests))
  in
  if Atomic.get mismatches > 0 then
    failwith "server bench: an overloaded response diverged from the one-shot CLI";
  if json then
    Printf.printf
      "{\"requests\": %d, \"jobs\": %d, \"clients\": %d, \"cores\": %d,\n\
      \ \"wall_s\": {\"one_shot_suite\": %.6f, \"server_cold\": %.6f, \
       \"server_warm\": %.6f},\n\
      \ \"requests_per_sec\": {\"cold\": %.1f, \"warm\": %.1f},\n\
      \ \"latency_ms\": {\"cold\": {\"p50\": %.3f, \"p99\": %.3f}, \
       \"warm\": {\"p50\": %.3f, \"p99\": %.3f}},\n\
      \ \"cache\": {\"cold\": {\"hits\": %d, \"misses\": %d, \"hit_rate\": %.3f}, \
       \"warm\": {\"hits\": %d, \"misses\": %d, \"hit_rate\": %.3f}},\n\
      \ \"incremental\": {\"functions\": %d, \"changed\": %d, \"dirty\": %d, \
       \"reused\": %d, \"cache_hits\": %d, \"cache_misses\": %d, \
       \"invalidations\": %d,\n\
      \   \"cold_one_shot_s\": %.6f, \"warm_incremental_s\": %.6f, \
       \"speedup\": %.2f, \"warm_beats_cold\": %b},\n\
      \ \"fleet\": {\"workers\": %d, \"requests\": %d, \"kill_every\": %d,\n\
      \   \"steady\": {\"requests_per_sec\": %.1f, \"p50_ms\": %.3f, \
       \"p99_ms\": %.3f},\n\
      \   \"churn\": {\"requests_per_sec\": %.1f, \"p50_ms\": %.3f, \
       \"p99_ms\": %.3f, \"workers_replaced\": %d, \"failovers\": %d}},\n\
      \ \"overload\": {\"capacity\": %d, \"clients\": %d, \"requests\": %d, \
       \"requests_per_sec\": %.1f, \"p50_ms\": %.3f, \"p99_ms\": %.3f, \
       \"shed\": %d, \"all_served\": true},\n\
      \ \"obs\": {\"requests\": %d, \"off\": {\"requests_per_sec\": %.1f, \
       \"p99_ms\": %.3f}, \"on\": {\"requests_per_sec\": %.1f, \"p99_ms\": \
       %.3f, \"spans\": %d}, \"overhead_pct\": %.2f, \"within_budget\": true},\n\
      \ \"byte_identical\": true}\n"
      (List.length sources) jobs clients cores one_shot_s cold_s warm_s
      (rps (List.length sources) cold_s)
      (rps (List.length warm_reqs) warm_s)
      (ms (percentile 50.0 cold_lat))
      (ms (percentile 99.0 cold_lat))
      (ms (percentile 50.0 warm_lat))
      (ms (percentile 99.0 warm_lat))
      cold_hits cold_misses cold_rate warm_hits warm_misses warm_rate
      (n_fns + 1) (plan_n "changed") (plan_n "dirty") (plan_n "reused")
      (delta_n "hits") (delta_n "misses") (delta_n "invalidations")
      cold_edit_s warm_edit_s
      (if warm_edit_s > 0.0 then cold_edit_s /. warm_edit_s else 0.0)
      (warm_edit_s < cold_edit_s)
      fleet_workers (List.length fleet_reqs) kill_every
      (rps (List.length fleet_reqs) fsteady_s)
      (ms (percentile 50.0 fsteady_lat))
      (ms (percentile 99.0 fsteady_lat))
      (rps (List.length fleet_reqs) fchurn_s)
      (ms (percentile 50.0 fchurn_lat))
      (ms (percentile 99.0 fchurn_lat))
      fchurn_replaced fchurn_failovers
      o_capacity clients (List.length o_reqs)
      (rps (List.length o_reqs) o_s)
      (ms (percentile 50.0 o_lat))
      (ms (percentile 99.0 o_lat))
      o_shed
      (List.length warm_reqs)
      (rps (List.length warm_reqs) obs_off_s)
      (ms (percentile 99.0 obs_off_lat))
      (rps (List.length warm_reqs) obs_on_s)
      (ms (percentile 99.0 obs_on_lat))
      obs_spans obs_overhead_pct
  else begin
    header "Analysis server: request throughput + incremental re-analysis";
    Printf.printf "  workload: %d predict requests over %d client threads (pool jobs=%d, %d cores)\n"
      (List.length sources) clients jobs cores;
    Printf.printf "  %-22s %10s %12s %10s %10s\n" "pass" "wall (s)" "req/s" "p50 (ms)" "p99 (ms)";
    List.iter
      (fun (name, n, t, lat) ->
        Printf.printf "  %-22s %10.4f %12.1f %10.3f %10.3f\n" name t (rps n t)
          (ms (percentile 50.0 lat))
          (ms (percentile 99.0 lat)))
      [
        ("cold (empty cache)", List.length sources, cold_s, cold_lat);
        ("warm (cache resident)", List.length warm_reqs, warm_s, warm_lat);
      ];
    Printf.printf "  cache hit rate: cold %.1f%% (%d/%d), warm %.1f%% (%d/%d)\n"
      (100.0 *. cold_rate) cold_hits (cold_hits + cold_misses)
      (100.0 *. warm_rate) warm_hits (warm_hits + warm_misses);
    Printf.printf "  one-function edit (%d functions): changed=%d dirty=%d reused=%d, cache +%d hits +%d misses +%d invalidations\n"
      (n_fns + 1) (plan_n "changed") (plan_n "dirty") (plan_n "reused")
      (delta_n "hits") (delta_n "misses") (delta_n "invalidations");
    Printf.printf "  warm incremental %.4fs vs cold one-shot %.4fs (%.2fx)\n"
      warm_edit_s cold_edit_s
      (if warm_edit_s > 0.0 then cold_edit_s /. warm_edit_s else 0.0);
    Printf.printf "  fleet (%d workers, %d requests):\n" fleet_workers
      (List.length fleet_reqs);
    List.iter
      (fun (name, t, lat) ->
        Printf.printf "  %-22s %10.4f %12.1f %10.3f %10.3f\n" name t
          (rps (List.length fleet_reqs) t)
          (ms (percentile 50.0 lat))
          (ms (percentile 99.0 lat)))
      [ ("fleet steady", fsteady_s, fsteady_lat); ("fleet churn", fchurn_s, fchurn_lat) ];
    Printf.printf
      "  churn (kill-worker:%d): %d worker(s) replaced, %d failover(s), zero lost requests\n"
      kill_every fchurn_replaced fchurn_failovers;
    Printf.printf
      "  overload (%d clients at 2x capacity %d): %10.4f %12.1f %10.3f %10.3f\n"
      clients o_capacity o_s
      (rps (List.length o_reqs) o_s)
      (ms (percentile 50.0 o_lat))
      (ms (percentile 99.0 o_lat));
    Printf.printf "  overload: %d request(s) shed then replayed via retry_after_ms, all served\n"
      o_shed;
    Printf.printf
      "  obs overhead (warm pass, best of two): tracer off %.1f req/s p99 \
       %.3fms, on %.1f req/s p99 %.3fms (%+.1f%%, %d spans captured)\n"
      (rps (List.length warm_reqs) obs_off_s)
      (ms (percentile 99.0 obs_off_lat))
      (rps (List.length warm_reqs) obs_on_s)
      (ms (percentile 99.0 obs_on_lat))
      obs_overhead_pct obs_spans;
    Printf.printf "  every response byte-identical to the one-shot CLI\n%!"
  end

(* --- Bechamel timings --- *)

let perf () =
  header "Performance (Bechamel; one Test.make per phase)";
  let open Bechamel in
  let open Toolkit in
  (* Pre-compiled inputs so the benchmarks time only the phase of interest. *)
  let qsort = Option.get (Suite.find "qsort") in
  let compiled = Pipeline.compile qsort.Suite.source in
  let main_fn = Option.get (Vrp_ir.Ir.find_fn compiled.Pipeline.ssa "main") in
  let r1 =
    Vrp_ranges.Value.of_ranges
      [
        Vrp_ranges.Srange.numeric ~p:0.7 (Vrp_ranges.Progression.make 32 256 1);
        Vrp_ranges.Srange.numeric ~p:0.3 (Vrp_ranges.Progression.make 3 21 3);
      ]
  in
  let r2 =
    Vrp_ranges.Value.of_ranges
      [
        Vrp_ranges.Srange.numeric ~p:0.6 (Vrp_ranges.Progression.make 16 100 4);
        Vrp_ranges.Srange.numeric ~p:0.4 (Vrp_ranges.Progression.make 8 8 0);
      ]
  in
  let tests =
    [
      Test.make ~name:"range-add"
        (Staged.stage (fun () -> Vrp_ranges.Value.binop Vrp_lang.Ast.Add r1 r2));
      Test.make ~name:"range-cmp-prob"
        (Staged.stage (fun () -> Vrp_ranges.Value.cmp_prob Vrp_lang.Ast.Lt r1 r2));
      Test.make ~name:"front-end-qsort"
        (Staged.stage (fun () -> Pipeline.compile qsort.Suite.source));
      Test.make ~name:"sccp-qsort-main"
        (Staged.stage (fun () -> Vrp_core.Sccp.analyze main_fn));
      Test.make ~name:"vrp-qsort-main"
        (Staged.stage (fun () -> Engine.analyze main_fn));
      Test.make ~name:"vrp-numeric-qsort-main"
        (Staged.stage (fun () -> Engine.analyze ~config:Engine.numeric_only_config main_fn));
      Test.make ~name:"ball-larus-qsort"
        (Staged.stage (fun () -> Vrp_predict.Predictor.ball_larus compiled.Pipeline.ssa));
      Test.make ~name:"interproc-vrp-qsort"
        (Staged.stage (fun () -> Vrp_core.Interproc.analyze compiled.Pipeline.ssa));
    ]
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) () in
  let results =
    List.map
      (fun test ->
        let raw = Benchmark.all cfg instances test in
        Analyze.all ols Instance.monotonic_clock raw)
      (List.map (fun t -> Test.make_grouped ~name:"vrp" ~fmt:"%s/%s" [ t ]) tests)
  in
  List.iter
    (fun tbl ->
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "  %-34s %14.1f ns/run\n%!" name est
          | Some _ | None -> Printf.printf "  %-34s (no estimate)\n%!" name)
        tbl)
    results

(* --- Perf regression gate ---

   `gate BASELINE.json CURRENT.json` compares a committed bench snapshot
   (BENCH_batch.json / BENCH_server.json) against a fresh run: every
   throughput leaf (a number under a "requests_per_sec" or
   "functions_per_sec" key path) may not drop by more than 25%, and every
   "p99" latency leaf may not grow by more than 25%. The baseline drives
   the walk, so new metrics in the current run are ignored but a metric
   that disappeared fails the gate. *)
let gate baseline_file current_file =
  let module Json = Vrp_server.Json in
  let load file =
    let ic = open_in_bin file in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    match Json.parse s with
    | Ok v -> v
    | Error msg -> failwith (Printf.sprintf "%s: %s" file msg)
  in
  let base = load baseline_file and cur = load current_file in
  let rec lookup path v =
    match path with
    | [] -> Some v
    | k :: rest -> Option.bind (Json.member k v) (lookup rest)
  in
  let num = function
    | Json.Int n -> Some (float_of_int n)
    | Json.Float f -> Some f
    | _ -> None
  in
  let failures = ref [] in
  let checked = ref 0 in
  let check path dir b =
    let name = String.concat "." (List.rev path) in
    match Option.bind (lookup (List.rev path) cur) num with
    | None -> failures := Printf.sprintf "%s: missing from current run" name :: !failures
    | Some c ->
      incr checked;
      let ok, verdict =
        match dir with
        | `Higher_better ->
          (* Tiny baselines gate on absolute slack instead: a 25% drop of
             almost nothing is measurement noise, not a regression. *)
          (c >= b *. 0.75 || b -. c < 0.5, "req/s")
        | `Lower_better -> (c <= b *. 1.25 || c -. b < 0.25, "p99 ms")
      in
      Printf.printf "  %-50s baseline %10.2f  current %10.2f  %s%s\n" name b c verdict
        (if ok then "" else "  << REGRESSION");
      if not ok then
        failures := Printf.sprintf "%s: baseline %.2f, current %.2f" name b c :: !failures
  in
  let under keys k = List.exists (fun key -> List.mem key keys) k in
  let rec walk path v =
    match v with
    | Json.Obj fields -> List.iter (fun (k, v) -> walk (k :: path) v) fields
    | Json.List items -> List.iteri (fun i v -> walk (string_of_int i :: path) v) items
    | _ -> (
      match num v with
      | None -> ()
      | Some b ->
        if under [ "requests_per_sec"; "functions_per_sec" ] path then
          check path `Higher_better b
        else if List.exists (fun k -> k = "p99" || k = "p99_ms") path then
          check path `Lower_better b)
  in
  Printf.printf "perf gate: %s vs %s (25%% tolerance)\n" baseline_file current_file;
  walk [] base;
  Printf.printf "  %d metric(s) compared\n" !checked;
  if !checked = 0 then begin
    prerr_endline "gate: no gated metrics found in the baseline";
    exit 1
  end;
  match !failures with
  | [] -> print_endline "  gate passed"
  | fs ->
    prerr_endline "gate: perf regressions against the committed baseline:";
    List.iter (fun f -> prerr_endline ("  " ^ f)) (List.rev fs);
    exit 1

let all () =
  fig4 ();
  fig5 ();
  fig6 ();
  fig7 ();
  fig8 ();
  ablate_r ();
  ablate_worklist ();
  ablate_assert ();
  ablate_derive ();
  ablate_trip_prior ();
  perf ()

let () =
  match Array.to_list Sys.argv with
  | [ _ ] | [ _; "all" ] -> all ()
  | [ _; "fig4" ] -> fig4 ()
  | [ _; "fig5" ] -> fig5 ()
  | [ _; "fig6" ] -> fig6 ()
  | [ _; "fig7" ] -> fig7 ()
  | [ _; "fig8" ] -> fig8 ()
  | [ _; "ablate-r" ] -> ablate_r ()
  | [ _; "ablate-worklist" ] -> ablate_worklist ()
  | [ _; "ablate-assert" ] -> ablate_assert ()
  | [ _; "ablate-derive" ] -> ablate_derive ()
  | [ _; "ablate-trip" ] -> ablate_trip_prior ()
  | [ _; "perf" ] -> perf ()
  | [ _; "batch" ] -> batch_bench ~json:false ()
  | [ _; "batch"; "--json" ] | [ _; "batch"; "-json" ] -> batch_bench ~json:true ()
  | [ _; "server" ] -> server_bench ~json:false ()
  | [ _; "server"; "--json" ] | [ _; "server"; "-json" ] -> server_bench ~json:true ()
  | [ _; "gate"; baseline; current ] -> gate baseline current
  | _ ->
    prerr_endline
      "usage: main.exe [all|fig4|fig5|fig6|fig7|fig8|ablate-r|ablate-worklist|ablate-assert|ablate-derive|ablate-trip|perf|batch [--json]|server [--json]|gate BASELINE CURRENT]";
    exit 2
