(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation, runs the ablation sweeps DESIGN.md calls out, and times the
   core phases with Bechamel.

   Usage:
     bench/main.exe                 run everything (figures + ablations + perf)
     bench/main.exe fig4            the worked example (paper Figure 4)
     bench/main.exe fig5            expression evaluations vs program size
     bench/main.exe fig6            evaluation sub-operations vs program size
     bench/main.exe fig7            SPECint-style accuracy curves
     bench/main.exe fig8            SPECfp-style accuracy curves
     bench/main.exe ablate-r        range-budget sweep (R = 1..16)
     bench/main.exe ablate-worklist flow-first vs SSA-first draining
     bench/main.exe ablate-assert   with/without branch assertions
     bench/main.exe ablate-derive   with/without loop derivation
     bench/main.exe ablate-trip     trip-count prior sweep
     bench/main.exe perf            Bechamel micro/macro timings
     bench/main.exe batch [--json]  batch scheduler + summary-cache throughput *)

module Figures = Vrp_evaluation.Figures
module Error_analysis = Vrp_evaluation.Error_analysis
module Engine = Vrp_core.Engine
module Pipeline = Vrp_core.Pipeline
module Interp = Vrp_profile.Interp
module Suite = Vrp_suite.Suite

let header title =
  Printf.printf "\n================ %s ================\n%!" title

(* --- Figures --- *)

let fig4 () =
  header "Figure 4: worked example (paper Fig. 2) - ranges and probabilities";
  print_string (Figures.render_fig4 (Figures.fig4 ()));
  print_string
    "paper reference: x1<10 = 91%, x2>7 = 20%, y2==1 = 30%; x1 = 1[0:10:1],\n\
     y2 = { 0.8[0:7:1], 0.2[1:1:0] }\n"

let complexity_points = lazy (Figures.fig5_6 ())

let fig5 () =
  header "Figure 5: expression evaluations vs instructions";
  print_string
    (Figures.render_complexity (Lazy.force complexity_points)
       ~metric:(fun p -> p.Figures.evaluations)
       ~metric_name:"evaluations")

let fig6 () =
  header "Figure 6: evaluation sub-operations vs instructions";
  print_string
    (Figures.render_complexity (Lazy.force complexity_points)
       ~metric:(fun p -> p.Figures.sub_operations)
       ~metric_name:"sub-operations")

let fig7 () =
  header "Figure 7: SPECint-style suite accuracy (unweighted & weighted)";
  List.iter
    (fun r -> print_string (Figures.render_accuracy r))
    (Figures.accuracy ~category:Suite.Int_suite ())

let fig8 () =
  header "Figure 8: SPECfp-style suite accuracy (unweighted & weighted)";
  List.iter
    (fun r -> print_string (Figures.render_accuracy r))
    (Figures.accuracy ~category:Suite.Fp_suite ())

(* --- Ablations --- *)

(* Mean |error| over the whole suite for a given engine configuration, plus
   total expression evaluations (cost proxy). *)
let evaluate_config (config : Engine.config) : float * int =
  let errors = ref [] in
  let cost = ref 0 in
  List.iter
    (fun (b : Suite.benchmark) ->
      let c = Pipeline.compile b.Suite.source in
      let observed = (Interp.run c.Pipeline.ssa ~args:b.Suite.ref_args).Interp.profile in
      List.iter
        (fun fn ->
          let res = Engine.analyze ~config fn in
          cost := !cost + res.Engine.evaluations)
        c.Pipeline.ssa.Vrp_ir.Ir.fns;
      let prediction, _ = Pipeline.vrp_predictions ~config c.Pipeline.ssa in
      errors :=
        Error_analysis.mean_error ~weighted:false
          (Error_analysis.branch_errors ~observed prediction)
        :: !errors)
    Suite.benchmarks;
  (Vrp_util.Stats.mean !errors, !cost)

let ablate_r () =
  header "Ablation: range budget R (paper fixes R = 4)";
  Printf.printf "  %4s %18s %16s\n" "R" "mean |error| (pp)" "evaluations";
  List.iter
    (fun r ->
      Vrp_ranges.Config.with_max_ranges r (fun () ->
          let err, cost = evaluate_config Engine.default_config in
          Printf.printf "  %4d %18.2f %16d\n%!" r err cost))
    [ 1; 2; 4; 8; 16 ]

let ablate_worklist () =
  header "Ablation: worklist discipline (paper prefers the FlowWorkList)";
  List.iter
    (fun flow_first ->
      let err, cost = evaluate_config { Engine.default_config with flow_first } in
      Printf.printf "  %-10s mean |error| = %.2f pp, evaluations = %d\n%!"
        (if flow_first then "flow-first" else "ssa-first")
        err cost)
    [ true; false ]

let ablate_assert () =
  header "Ablation: branch assertions (paper 3.8)";
  List.iter
    (fun use_assertions ->
      let err, cost = evaluate_config { Engine.default_config with use_assertions } in
      Printf.printf "  %-14s mean |error| = %.2f pp, evaluations = %d\n%!"
        (if use_assertions then "with-asserts" else "no-asserts")
        err cost)
    [ true; false ]

let ablate_derive () =
  header "Ablation: loop-carried derivation (paper 3.6)";
  (* Micro-study first: counted loops of increasing trip count, analysed
     with an unlimited quota. The paper: without derivation "each loop would
     execute as many times during propagation as it would at runtime". *)
  Printf.printf "  counted loop micro-study (quota = trip count + 8):\n";
  List.iter
    (fun trips ->
      let src =
        Printf.sprintf
          "int main(int n, int seed) {\n\
          \  int acc = 0;\n\
          \  for (int i = 0; i < %d; i++) { acc = (acc + i) %% 65536; }\n\
          \  return acc;\n\
           }\n"
          trips
      in
      let c = Pipeline.compile src in
      let fn = List.hd c.Pipeline.ssa.Vrp_ir.Ir.fns in
      let costs =
        List.map
          (fun use_derivation ->
            let config =
              { Engine.default_config with use_derivation; eval_quota = trips + 8 }
            in
            (Engine.analyze ~config fn).Engine.evaluations)
          [ true; false ]
      in
      match costs with
      | [ with_d; without_d ] ->
        Printf.printf "    trips=%-7d evaluations: with-derive=%-6d no-derive=%d\n%!"
          trips with_d without_d
      | _ -> ())
    [ 100; 1_000; 10_000 ];
  List.iter
    (fun use_derivation ->
      let err, cost = evaluate_config { Engine.default_config with use_derivation } in
      Printf.printf "  %-14s (default quota) mean |error| = %.2f pp, evaluations = %d\n%!"
        (if use_derivation then "with-derive" else "no-derive")
        err cost)
    [ true; false ]

let ablate_trip_prior () =
  header "Ablation: back-edge trip-count prior at loop-header phis";
  Printf.printf "  %8s %18s\n" "prior" "mean |error| (pp)";
  List.iter
    (fun trip_prior ->
      let err, _ = evaluate_config { Engine.default_config with trip_prior } in
      Printf.printf "  %8.1f %18.2f\n%!" trip_prior err)
    [ 1.0; 4.0; 10.0; 25.0; 100.0 ]

(* --- Batch-analysis throughput (scheduler + summary cache) --- *)

(* Times the parallel batch subsystem over the suite plus synthetic
   programs: sequential reference, [jobs]-wide fan-out, and cold/warm runs
   against the summary cache — cross-checking along the way that every
   variant renders byte-identically to --jobs 1. With --json, emits one
   machine-readable object (for CI artifacts) instead of the table.

   Speedup honesty: the container this runs in may well have a single core
   (CI runners often do); the [cores] field records what was available so a
   speedup of ~1.0 on a 1-core box is not mistaken for a scheduler bug. *)
let batch_bench ~json () =
  let module Batch = Vrp_sched.Batch in
  let module Supervisor = Vrp_sched.Supervisor in
  let module Summary_cache = Vrp_cache.Summary_cache in
  let sources =
    List.map
      (fun (b : Suite.benchmark) -> (b.Suite.name ^ ".mc", b.Suite.source))
      Suite.benchmarks
    @ List.init 6 (fun i ->
          ( Printf.sprintf "synth%02d.mc" i,
            Vrp_suite.Synth.generate ~units:(12 + (6 * i)) ~seed:(4242 + i) () ))
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let jobs = 4 in
  let reference, seq_s = time (fun () -> Batch.analyze_sources ~jobs:1 sources) in
  let parallel, par_s = time (fun () -> Batch.analyze_sources ~jobs sources) in
  if Batch.render parallel <> Batch.render reference then
    failwith "batch bench: parallel run diverged from the sequential reference";
  let cache = Summary_cache.create () in
  let _, cold_s = time (fun () -> Batch.analyze_sources ~cache ~jobs sources) in
  let warm, warm_s = time (fun () -> Batch.analyze_sources ~cache ~jobs sources) in
  if Batch.render warm <> Batch.render reference then
    failwith "batch bench: warm-cache run diverged from fresh analysis";
  (* Supervised pass: a generous deadline that healthy analyses never hit,
     cross-checked byte-identical — supervision must be a no-op on results. *)
  let sup_policy =
    { Supervisor.default_policy with deadline_ms = Some 30_000; retries = 1 }
  in
  let (supervised, sup_counters), sup_s =
    time (fun () ->
        Supervisor.with_supervisor ~policy:sup_policy (fun supervisor ->
            let r = Batch.analyze_sources ~supervisor ~jobs sources in
            (r, Supervisor.counters supervisor)))
  in
  if Batch.render supervised <> Batch.render reference then
    failwith "batch bench: supervised run diverged from the sequential reference";
  let agg = Batch.aggregate reference in
  let c = Summary_cache.counters cache in
  let hit_rate =
    float_of_int c.Summary_cache.hits
    /. float_of_int (max 1 (c.Summary_cache.hits + c.Summary_cache.misses))
  in
  let fns_per_sec t =
    if t > 0.0 then float_of_int agg.Batch.functions /. t else 0.0
  in
  let speedup = if par_s > 0.0 then seq_s /. par_s else 0.0 in
  let cores = Domain.recommended_domain_count () in
  if json then
    Printf.printf
      "{\"files\": %d, \"functions\": %d, \"branches\": %d, \"jobs\": %d, \
       \"cores\": %d,\n\
      \ \"wall_s\": {\"jobs1\": %.6f, \"jobs%d\": %.6f, \"cache_cold\": %.6f, \
       \"cache_warm\": %.6f, \"supervised\": %.6f},\n\
      \ \"functions_per_sec\": {\"jobs1\": %.1f, \"jobs%d\": %.1f, \
       \"cache_warm\": %.1f},\n\
      \ \"speedup_vs_jobs1\": %.3f, \"warm_speedup_vs_jobs1\": %.3f,\n\
      \ \"cache\": {\"hits\": %d, \"disk_hits\": %d, \"misses\": %d, \
       \"invalidations\": %d, \"quarantined\": %d, \"hit_rate\": %.3f},\n\
      \ \"supervision\": {\"deadline_ms\": 30000, \"retries_allowed\": 1, \
       \"deadline_hits\": %d, \"retries\": %d, \"gave_up\": %d},\n\
      \ \"deterministic\": true}\n"
      agg.Batch.files agg.Batch.functions agg.Batch.branches jobs cores seq_s
      jobs par_s cold_s warm_s sup_s (fns_per_sec seq_s) jobs (fns_per_sec par_s)
      (fns_per_sec warm_s) speedup
      (if warm_s > 0.0 then seq_s /. warm_s else 0.0)
      c.Summary_cache.hits c.Summary_cache.disk_hits c.Summary_cache.misses
      c.Summary_cache.invalidations c.Summary_cache.quarantined hit_rate
      sup_counters.Supervisor.deadline_hits sup_counters.Supervisor.retry_count
      sup_counters.Supervisor.gave_up
  else begin
    header "Batch analysis: domain-pool scheduler + summary cache";
    Printf.printf "  corpus: %d files, %d functions, %d branches (%d cores available)\n"
      agg.Batch.files agg.Batch.functions agg.Batch.branches cores;
    Printf.printf "  %-18s %10s %16s\n" "run" "wall (s)" "functions/s";
    List.iter
      (fun (name, t) -> Printf.printf "  %-18s %10.4f %16.1f\n" name t (fns_per_sec t))
      [
        ("jobs=1", seq_s);
        (Printf.sprintf "jobs=%d" jobs, par_s);
        ("cache cold", cold_s);
        ("cache warm", warm_s);
        ("supervised", sup_s);
      ];
    Printf.printf "  speedup vs jobs=1: %.2fx parallel, %.2fx warm cache\n" speedup
      (if warm_s > 0.0 then seq_s /. warm_s else 0.0);
    Printf.printf "  %s\n" (Summary_cache.counters_line cache);
    Printf.printf "  supervision (30s deadline, 1 retry): %d deadline hit(s), %d retry(ies)\n"
      sup_counters.Supervisor.deadline_hits sup_counters.Supervisor.retry_count;
    Printf.printf "  all variants rendered byte-identically to jobs=1\n%!"
  end

(* --- Bechamel timings --- *)

let perf () =
  header "Performance (Bechamel; one Test.make per phase)";
  let open Bechamel in
  let open Toolkit in
  (* Pre-compiled inputs so the benchmarks time only the phase of interest. *)
  let qsort = Option.get (Suite.find "qsort") in
  let compiled = Pipeline.compile qsort.Suite.source in
  let main_fn = Option.get (Vrp_ir.Ir.find_fn compiled.Pipeline.ssa "main") in
  let r1 =
    Vrp_ranges.Value.of_ranges
      [
        Vrp_ranges.Srange.numeric ~p:0.7 (Vrp_ranges.Progression.make 32 256 1);
        Vrp_ranges.Srange.numeric ~p:0.3 (Vrp_ranges.Progression.make 3 21 3);
      ]
  in
  let r2 =
    Vrp_ranges.Value.of_ranges
      [
        Vrp_ranges.Srange.numeric ~p:0.6 (Vrp_ranges.Progression.make 16 100 4);
        Vrp_ranges.Srange.numeric ~p:0.4 (Vrp_ranges.Progression.make 8 8 0);
      ]
  in
  let tests =
    [
      Test.make ~name:"range-add"
        (Staged.stage (fun () -> Vrp_ranges.Value.binop Vrp_lang.Ast.Add r1 r2));
      Test.make ~name:"range-cmp-prob"
        (Staged.stage (fun () -> Vrp_ranges.Value.cmp_prob Vrp_lang.Ast.Lt r1 r2));
      Test.make ~name:"front-end-qsort"
        (Staged.stage (fun () -> Pipeline.compile qsort.Suite.source));
      Test.make ~name:"sccp-qsort-main"
        (Staged.stage (fun () -> Vrp_core.Sccp.analyze main_fn));
      Test.make ~name:"vrp-qsort-main"
        (Staged.stage (fun () -> Engine.analyze main_fn));
      Test.make ~name:"vrp-numeric-qsort-main"
        (Staged.stage (fun () -> Engine.analyze ~config:Engine.numeric_only_config main_fn));
      Test.make ~name:"ball-larus-qsort"
        (Staged.stage (fun () -> Vrp_predict.Predictor.ball_larus compiled.Pipeline.ssa));
      Test.make ~name:"interproc-vrp-qsort"
        (Staged.stage (fun () -> Vrp_core.Interproc.analyze compiled.Pipeline.ssa));
    ]
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) () in
  let results =
    List.map
      (fun test ->
        let raw = Benchmark.all cfg instances test in
        Analyze.all ols Instance.monotonic_clock raw)
      (List.map (fun t -> Test.make_grouped ~name:"vrp" ~fmt:"%s/%s" [ t ]) tests)
  in
  List.iter
    (fun tbl ->
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "  %-34s %14.1f ns/run\n%!" name est
          | Some _ | None -> Printf.printf "  %-34s (no estimate)\n%!" name)
        tbl)
    results

let all () =
  fig4 ();
  fig5 ();
  fig6 ();
  fig7 ();
  fig8 ();
  ablate_r ();
  ablate_worklist ();
  ablate_assert ();
  ablate_derive ();
  ablate_trip_prior ();
  perf ()

let () =
  match Array.to_list Sys.argv with
  | [ _ ] | [ _; "all" ] -> all ()
  | [ _; "fig4" ] -> fig4 ()
  | [ _; "fig5" ] -> fig5 ()
  | [ _; "fig6" ] -> fig6 ()
  | [ _; "fig7" ] -> fig7 ()
  | [ _; "fig8" ] -> fig8 ()
  | [ _; "ablate-r" ] -> ablate_r ()
  | [ _; "ablate-worklist" ] -> ablate_worklist ()
  | [ _; "ablate-assert" ] -> ablate_assert ()
  | [ _; "ablate-derive" ] -> ablate_derive ()
  | [ _; "ablate-trip" ] -> ablate_trip_prior ()
  | [ _; "perf" ] -> perf ()
  | [ _; "batch" ] -> batch_bench ~json:false ()
  | [ _; "batch"; "--json" ] | [ _; "batch"; "-json" ] -> batch_bench ~json:true ()
  | _ ->
    prerr_endline
      "usage: main.exe [all|fig4|fig5|fig6|fig7|fig8|ablate-r|ablate-worklist|ablate-assert|ablate-derive|ablate-trip|perf|batch [--json]]";
    exit 2
